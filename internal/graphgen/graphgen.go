// Package graphgen is the dataset registry for the experiment harness. It
// reproduces the paper's Table 3 datasets as scaled-down proxies: the six
// synthetic RMAT27-RMAT32 graphs and profile-matched stand-ins for the three
// real graphs (Twitter, UK2007, YahooWeb), which are not redistributable.
//
// A proxy keeps the original's average degree and degree skew but shrinks
// the vertex count by a power of two, so bandwidth/working-set ratios — the
// quantities the paper's results depend on — are preserved.
package graphgen

import (
	"fmt"

	"repro/internal/csr"
	"repro/internal/rmat"
)

// Dataset describes one graph in the registry together with the size the
// paper used, for reporting alongside scaled measurements.
type Dataset struct {
	Name          string
	PaperVertices uint64
	PaperEdges    uint64
	// scale is the RMAT scale of the full-size graph (exact for RMATxx,
	// nearest power of two for the real-graph proxies).
	scale      int
	edgeFactor int
	a, b, c, d float64
	// pathFrac, when positive, threads a directed path through this
	// fraction of the vertices to inflate the graph's diameter — YahooWeb
	// is a high-diameter web graph, which RMAT alone cannot mimic.
	pathFrac float64
}

// registry lists the paper's nine datasets. RMAT parameters for the real
// graphs approximate their published degree skew: Twitter is extremely
// skewed (celebrity hubs), UK2007 is a host-local web crawl, YahooWeb is
// sparse (avg degree ~4.7) with a large diameter.
var registry = []Dataset{
	{Name: "RMAT26", PaperVertices: 64 << 20, PaperEdges: 1024 << 20, scale: 26, edgeFactor: 16, a: 0.57, b: 0.19, c: 0.19, d: 0.05},
	{Name: "RMAT27", PaperVertices: 128 << 20, PaperEdges: 2048 << 20, scale: 27, edgeFactor: 16, a: 0.57, b: 0.19, c: 0.19, d: 0.05},
	{Name: "RMAT28", PaperVertices: 256 << 20, PaperEdges: 4096 << 20, scale: 28, edgeFactor: 16, a: 0.57, b: 0.19, c: 0.19, d: 0.05},
	{Name: "RMAT29", PaperVertices: 512 << 20, PaperEdges: 8192 << 20, scale: 29, edgeFactor: 16, a: 0.57, b: 0.19, c: 0.19, d: 0.05},
	{Name: "RMAT30", PaperVertices: 1 << 30, PaperEdges: 16 << 30, scale: 30, edgeFactor: 16, a: 0.57, b: 0.19, c: 0.19, d: 0.05},
	{Name: "RMAT31", PaperVertices: 2 << 30, PaperEdges: 32 << 30, scale: 31, edgeFactor: 16, a: 0.57, b: 0.19, c: 0.19, d: 0.05},
	{Name: "RMAT32", PaperVertices: 4 << 30, PaperEdges: 64 << 30, scale: 32, edgeFactor: 16, a: 0.57, b: 0.19, c: 0.19, d: 0.05},
	{Name: "Twitter", PaperVertices: 42e6, PaperEdges: 1468e6, scale: 25, edgeFactor: 35, a: 0.62, b: 0.18, c: 0.17, d: 0.03},
	{Name: "UK2007", PaperVertices: 106e6, PaperEdges: 3739e6, scale: 27, edgeFactor: 35, a: 0.48, b: 0.21, c: 0.21, d: 0.10},
	{Name: "YahooWeb", PaperVertices: 1414e6, PaperEdges: 6636e6, scale: 30, edgeFactor: 4, a: 0.63, b: 0.17, c: 0.17, d: 0.03, pathFrac: 0.10},
}

// ByName looks a dataset up; the boolean reports whether it exists.
func ByName(name string) (Dataset, bool) {
	for _, d := range registry {
		if d.Name == name {
			return d, true
		}
	}
	return Dataset{}, false
}

// All returns the registry in paper order.
func All() []Dataset {
	out := make([]Dataset, len(registry))
	copy(out, registry)
	return out
}

// Synthetic returns only the RMATxx datasets.
func Synthetic() []Dataset {
	var out []Dataset
	for _, d := range registry {
		if d.pathFrac == 0 && d.edgeFactor == 16 {
			out = append(out, d)
		}
	}
	return out
}

// Real returns only the real-graph proxies.
func Real() []Dataset {
	var out []Dataset
	for _, d := range All() {
		if d.Name == "Twitter" || d.Name == "UK2007" || d.Name == "YahooWeb" {
			out = append(out, d)
		}
	}
	return out
}

// ProxyScale reports the RMAT scale used when shrinking by 2^shrink.
func (d Dataset) ProxyScale(shrink int) int {
	s := d.scale - shrink
	if s < 4 {
		s = 4
	}
	return s
}

// ScaleFactor reports PaperVertices / proxy vertices — the down-scaling the
// harness applies, recorded in EXPERIMENTS.md.
func (d Dataset) ScaleFactor(shrink int) float64 {
	return float64(d.PaperVertices) / float64(uint64(1)<<d.ProxyScale(shrink))
}

// Generate materializes the proxy graph shrunk by 2^shrink (shrink 0 is the
// paper-size graph; callers on one machine want shrink >= 8).
func (d Dataset) Generate(shrink int) (*csr.Graph, error) {
	p := rmat.Params{
		Scale:      d.ProxyScale(shrink),
		EdgeFactor: d.edgeFactor,
		A:          d.a, B: d.b, C: d.c, D: d.d,
		Noise: 0.1,
		Seed:  seedFor(d.Name),
	}
	edges, err := rmat.Edges(p)
	if err != nil {
		return nil, fmt.Errorf("graphgen: %s: %w", d.Name, err)
	}
	n := p.NumVertices()
	if d.pathFrac > 0 {
		// Thread a path through the first pathFrac of the vertex range to
		// raise the diameter (YahooWeb's BFS behaviour depends on it).
		span := int(float64(n) * d.pathFrac)
		for i := 0; i+1 < span; i++ {
			edges = append(edges, csr.Edge{Src: uint32(i), Dst: uint32(i + 1)})
		}
	}
	return csr.FromEdges(n, edges)
}

// MustGenerate is Generate, panicking on error.
func (d Dataset) MustGenerate(shrink int) *csr.Graph {
	g, err := d.Generate(shrink)
	if err != nil {
		panic(err)
	}
	return g
}

// seedFor gives every dataset a stable distinct seed.
func seedFor(name string) int64 {
	var h int64 = 1469598103934665603
	for _, c := range name {
		h = (h ^ int64(c)) * 16777619
	}
	if h < 0 {
		h = -h
	}
	return h
}

// Density generates the paper's Figure 14 sweep: an RMAT28-proxy at the
// given scale whose vertex:edge density is 1:edgeFactor.
func Density(scale, edgeFactor int) (*csr.Graph, error) {
	p := rmat.Default(scale)
	p.EdgeFactor = edgeFactor
	p.Seed = 280 + int64(edgeFactor)
	return rmat.Generate(p)
}

// The constructors below build tiny deterministic graphs for algorithm
// tests and documentation examples.

// Path returns the directed path 0 -> 1 -> ... -> n-1.
func Path(n int) *csr.Graph {
	edges := make([]csr.Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, csr.Edge{Src: uint32(i), Dst: uint32(i + 1)})
	}
	return csr.MustFromEdges(n, edges)
}

// Cycle returns the directed cycle over n vertices.
func Cycle(n int) *csr.Graph {
	edges := make([]csr.Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, csr.Edge{Src: uint32(i), Dst: uint32((i + 1) % n)})
	}
	return csr.MustFromEdges(n, edges)
}

// Star returns a hub (vertex 0) pointing at n-1 spokes.
func Star(n int) *csr.Graph {
	edges := make([]csr.Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, csr.Edge{Src: 0, Dst: uint32(i)})
	}
	return csr.MustFromEdges(n, edges)
}

// Complete returns the complete directed graph (no self loops).
func Complete(n int) *csr.Graph {
	var edges []csr.Edge
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				edges = append(edges, csr.Edge{Src: uint32(i), Dst: uint32(j)})
			}
		}
	}
	return csr.MustFromEdges(n, edges)
}

// Grid returns a rows x cols grid with right and down edges.
func Grid(rows, cols int) *csr.Graph {
	var edges []csr.Edge
	id := func(r, c int) uint32 { return uint32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, csr.Edge{Src: id(r, c), Dst: id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, csr.Edge{Src: id(r, c), Dst: id(r+1, c)})
			}
		}
	}
	return csr.MustFromEdges(rows*cols, edges)
}
