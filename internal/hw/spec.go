// Package hw models the hardware GTS runs on — GPUs, the PCI-E interconnect,
// SSD/HDD storage and host memory — as deterministic discrete-event resources
// on top of internal/sim.
//
// The models are calibrated to the paper's testbed (§7.1): a workstation with
// two Intel Xeon E5-2687W CPUs, 128 GB of main memory, two NVIDIA GTX TITAN X
// GPUs (12 GB device memory each) and two Fusion-io PCI-E SSDs, connected by
// PCI-E 3.0 x16. Graph kernels execute functionally in Go; only their *time*
// comes from these models, so results are exact and timings are reproducible.
package hw

import (
	"fmt"

	"repro/internal/sim"
)

// GPUSpec describes one GPU.
type GPUSpec struct {
	Name string
	// DeviceMemory is the device DRAM capacity in bytes.
	DeviceMemory int64
	// ConcurrentKernels is the hardware queue limit for kernels executing
	// at once (32 for CUDA at the paper's time, §3.2).
	ConcurrentKernels int
	// CyclesPerSec is the aggregate SM throughput in model cycles/second,
	// reached when KernelConcurrency kernels are resident.
	CyclesPerSec float64
	// KernelConcurrency is how many concurrent page kernels saturate the
	// SMs: one kernel alone runs at CyclesPerSec/KernelConcurrency (a
	// single page cannot occupy every SM), which is why the paper's
	// Figure 10 keeps improving up to 32 streams and why Table 1's
	// per-page kernel times exceed per-page transfer times even though
	// whole runs are stream-bound.
	KernelConcurrency int
	// LaunchOverhead is the driver-side latency of submitting one kernel;
	// it is paid inside the submitting stream, so more streams overlap it
	// (the effect behind the paper's Figure 10).
	LaunchOverhead sim.Time
	// ThermalLimit, when positive, is the cumulative kernel busy time
	// after which the GPU down-clocks to ThermalFactor of its throughput —
	// the paper observes exactly this on RMAT32: "the performance of GPUs
	// tends to be degraded (e.g., down-clocking) due to overheat when
	// processing for a long time" (§7.2). Zero disables the model.
	ThermalLimit sim.Time
	// ThermalFactor is the throttled throughput fraction in (0,1].
	ThermalFactor float64
}

// PCIeSpec describes the host interconnect.
type PCIeSpec struct {
	// ChunkRate is c1 — bytes/second for large pinned chunk copies
	// (~16 GB/s on PCI-E 3.0 x16, paper §5.1).
	ChunkRate float64
	// StreamRate is c2 — bytes/second in streaming copy mode (~6 GB/s).
	StreamRate float64
	// P2PRate is the GPU peer-to-peer copy rate, "much faster than between
	// GPU and main memory" (paper §4.1).
	P2PRate float64
	// Latency is the fixed per-transfer setup cost.
	Latency sim.Time
}

// StorageKind distinguishes device classes.
type StorageKind int

// Storage kinds.
const (
	SSD StorageKind = iota
	HDD
)

// String returns "SSD" or "HDD".
func (k StorageKind) String() string {
	if k == HDD {
		return "HDD"
	}
	return "SSD"
}

// StorageSpec describes one secondary-storage device.
type StorageSpec struct {
	Kind StorageKind
	// SeqRead is the sequential read bandwidth in bytes/second.
	SeqRead float64
	// RandRead is the bandwidth for non-sequential page reads. SSDs lose
	// little; HDDs collapse (seeks).
	RandRead float64
	// Latency is the fixed per-request latency.
	Latency sim.Time
}

// CPUSpec describes the host CPUs, used by the CPU-resident baselines.
type CPUSpec struct {
	Sockets int
	Cores   int // total physical cores across sockets
	// CyclesPerSec is per-core throughput in model cycles/second.
	CyclesPerSec float64
	// MemBandwidth is the aggregate main-memory bandwidth in bytes/second.
	MemBandwidth float64
}

// MachineSpec is a full single-machine configuration.
type MachineSpec struct {
	GPUs       []GPUSpec
	PCIe       PCIeSpec
	Storage    []StorageSpec
	CPU        CPUSpec
	MainMemory int64
}

// TitanX returns the paper's NVIDIA GTX TITAN X model. The cycle rate is
// calibrated so that the paper's Table 1 transfer:kernel ratios emerge for
// BFS and PageRank page kernels (see internal/kernels' cost constants).
func TitanX() GPUSpec {
	return GPUSpec{
		Name:              "GTX TITAN X",
		DeviceMemory:      12 << 30,
		ConcurrentKernels: 32,
		CyclesPerSec:      300e9,
		KernelConcurrency: 16,
		LaunchOverhead:    8 * sim.Microsecond,
	}
}

// PCIe3x16 returns the paper's PCI-E 3.0 x16 link model.
func PCIe3x16() PCIeSpec {
	return PCIeSpec{
		ChunkRate:  16e9,
		StreamRate: 6e9,
		P2PRate:    20e9,
		Latency:    10 * sim.Microsecond,
	}
}

// FusionIOSSD returns one of the paper's PCI-E SSDs: two of them reach
// ~5 GB/s sequential read (paper §7.5).
func FusionIOSSD() StorageSpec {
	return StorageSpec{Kind: SSD, SeqRead: 2.5e9, RandRead: 2.0e9, Latency: 60 * sim.Microsecond}
}

// SATAHDD returns one of the paper's HDDs: two reach ~330 MB/s sequential.
func SATAHDD() StorageSpec {
	return StorageSpec{Kind: HDD, SeqRead: 165e6, RandRead: 30e6, Latency: 8 * sim.Millisecond}
}

// XeonE5 returns the paper's dual-socket Xeon E5-2687W (8 cores each).
func XeonE5() CPUSpec {
	return CPUSpec{Sockets: 2, Cores: 16, CyclesPerSec: 6e9, MemBandwidth: 50e9}
}

// Workstation returns the paper's single-machine testbed with the given GPU
// and SSD counts (up to 2 of each, as in the paper).
func Workstation(gpus, ssds int) MachineSpec {
	spec := MachineSpec{
		PCIe:       PCIe3x16(),
		CPU:        XeonE5(),
		MainMemory: 128 << 30,
	}
	for i := 0; i < gpus; i++ {
		spec.GPUs = append(spec.GPUs, TitanX())
	}
	for i := 0; i < ssds; i++ {
		spec.Storage = append(spec.Storage, FusionIOSSD())
	}
	return spec
}

// WorkstationHDD is Workstation with HDDs in place of SSDs (Figure 9's
// "2 HDDs" configuration).
func WorkstationHDD(gpus, hdds int) MachineSpec {
	spec := Workstation(gpus, 0)
	for i := 0; i < hdds; i++ {
		spec.Storage = append(spec.Storage, SATAHDD())
	}
	return spec
}

// Scale returns a copy of the spec with every *capacity* and every fixed
// per-operation *latency* divided by factor, leaving bandwidths untouched.
// The harness scales hardware by the same power of two as the datasets:
// capacities shrink so OOM crossovers land where the paper's do, and
// latencies shrink because pages shrink alongside — a 4096x smaller page
// must not pay the full-size per-request setup cost, or latency would
// dominate transfer in a way it never does at paper scale. Virtual times
// then extrapolate back by multiplying with the same factor.
func (m MachineSpec) Scale(factor int64) MachineSpec {
	if factor <= 0 {
		panic(fmt.Sprintf("hw: scale factor %d must be positive", factor))
	}
	out := m
	out.GPUs = append([]GPUSpec(nil), m.GPUs...)
	for i := range out.GPUs {
		out.GPUs[i].DeviceMemory /= factor
		out.GPUs[i].LaunchOverhead /= sim.Time(factor)
	}
	out.MainMemory /= factor
	out.PCIe.Latency /= sim.Time(factor)
	out.Storage = append([]StorageSpec(nil), m.Storage...)
	for i := range out.Storage {
		out.Storage[i].Latency /= sim.Time(factor)
	}
	return out
}

// Validate reports whether the spec is usable.
func (m MachineSpec) Validate() error {
	if len(m.GPUs) == 0 {
		return fmt.Errorf("hw: machine has no GPUs")
	}
	for i, g := range m.GPUs {
		if g.DeviceMemory <= 0 || g.CyclesPerSec <= 0 || g.ConcurrentKernels < 1 || g.KernelConcurrency < 1 {
			return fmt.Errorf("hw: GPU %d spec invalid", i)
		}
	}
	if m.PCIe.ChunkRate <= 0 || m.PCIe.StreamRate <= 0 {
		return fmt.Errorf("hw: PCI-E rates must be positive")
	}
	if m.MainMemory <= 0 {
		return fmt.Errorf("hw: main memory must be positive")
	}
	return nil
}
