package hw

import (
	"errors"
	"fmt"

	"repro/internal/fault"
	"repro/internal/sim"
)

// ErrOutOfDeviceMemory reports that a GPU allocation exceeded device DRAM —
// the capacity wall that motivates GTS (paper §1) and that sinks CuSha and
// MapGraph on larger graphs (paper §7.4).
var ErrOutOfDeviceMemory = errors.New("hw: out of GPU device memory")

// GPU is the runtime model of one GPU bound to a simulation environment.
//
// Transfers: each GPU has one host-to-device DMA engine and one
// device-to-host engine; transfers on an engine serialize against each other
// but overlap with kernel execution and with the other engine (paper §3.2,
// Fig. 3). Kernels: up to ConcurrentKernels submissions queue in hardware;
// KernelConcurrency of them execute at once, each at an equal share of the
// aggregate SM throughput.
type GPU struct {
	Spec  GPUSpec
	Index int

	env     *sim.Env
	pcie    PCIeSpec
	h2d     *sim.Resource // host-to-device DMA engine
	d2h     *sim.Resource // device-to-host DMA engine
	smPool  *sim.Resource // kernel execution
	kernels *sim.Resource // concurrent-kernel slots (CUDA limit: 32)
	inj     *fault.Injector

	memUsed     int64
	kernelCalls int64
	kernelTime  sim.Time
	h2dBytes    int64
	d2hBytes    int64

	sharedServings   int64
	sharedBytesSaved int64
}

// NewGPU binds a GPU spec to env with the given PCI-E link.
func NewGPU(env *sim.Env, spec GPUSpec, pcie PCIeSpec, index int) *GPU {
	return &GPU{
		Spec:    spec,
		Index:   index,
		env:     env,
		pcie:    pcie,
		h2d:     sim.NewResource(env, 1),
		d2h:     sim.NewResource(env, 1),
		smPool:  sim.NewResource(env, spec.KernelConcurrency),
		kernels: sim.NewResource(env, spec.ConcurrentKernels),
	}
}

// Alloc reserves n bytes of device memory.
func (g *GPU) Alloc(n int64) error {
	if g.memUsed+n > g.Spec.DeviceMemory {
		return fmt.Errorf("%w: need %d, %d free on GPU%d",
			ErrOutOfDeviceMemory, n, g.Spec.DeviceMemory-g.memUsed, g.Index)
	}
	g.memUsed += n
	return nil
}

// Free releases n bytes of device memory.
func (g *GPU) Free(n int64) {
	g.memUsed -= n
	if g.memUsed < 0 {
		panic("hw: GPU.Free released more than allocated")
	}
}

// MemUsed reports allocated device memory.
func (g *GPU) MemUsed() int64 { return g.memUsed }

// MemFree reports unallocated device memory — what GTS turns into page
// cache (paper §3.3).
func (g *GPU) MemFree() int64 { return g.Spec.DeviceMemory - g.memUsed }

// InjectFaults arms the GPU's copy engines and kernel launcher with a
// fault injector. A nil injector restores fault-free behaviour.
func (g *GPU) InjectFaults(inj *fault.Injector) { g.inj = inj }

// transfer runs one DMA operation on engine: acquire, pay link latency plus
// the byte time, release. An injected stall lengthens the busy window; an
// injected error burns the full bus time (the transfer ran, then the
// completion was reported bad — as a real DMA engine with ECC would) and
// the bytes are not counted as delivered.
func (g *GPU) transfer(p *sim.Proc, engine *sim.Resource, t sim.Time, delivered *int64, n int64) error {
	stall, err := g.inj.Transfer()
	engine.Acquire(p)
	p.Delay(t + stall)
	engine.Release()
	if err != nil {
		return fmt.Errorf("%w (GPU%d)", err, g.Index)
	}
	if delivered != nil {
		*delivered += n
	}
	return nil
}

// CopyChunkIn moves n bytes host-to-device at the chunk rate c1 (pinned
// bulk copies such as WA upload).
func (g *GPU) CopyChunkIn(p *sim.Proc, n int64) error {
	return g.transfer(p, g.h2d, g.pcie.Latency+sim.ByteTime(n, g.pcie.ChunkRate), &g.h2dBytes, n)
}

// CopyStreamIn moves n bytes host-to-device at the streaming rate c2
// (per-page topology/RA copies issued by GPU streams).
func (g *GPU) CopyStreamIn(p *sim.Proc, n int64) error {
	return g.transfer(p, g.h2d, g.pcie.Latency+sim.ByteTime(n, g.pcie.StreamRate), &g.h2dBytes, n)
}

// CopyOut moves n bytes device-to-host at the chunk rate (WA
// synchronization back to main memory).
func (g *GPU) CopyOut(p *sim.Proc, n int64) error {
	return g.transfer(p, g.d2h, g.pcie.Latency+sim.ByteTime(n, g.pcie.ChunkRate), &g.d2hBytes, n)
}

// CopyPeer moves n bytes from g to dst over the peer-to-peer path
// (Strategy-P's WA merge, paper §4.1). It holds both devices' DMA engines.
func (g *GPU) CopyPeer(p *sim.Proc, dst *GPU, n int64) error {
	stall, err := g.inj.Transfer()
	g.d2h.Acquire(p)
	dst.h2d.Acquire(p)
	p.Delay(g.pcie.Latency + sim.ByteTime(n, g.pcie.P2PRate) + stall)
	dst.h2d.Release()
	g.d2h.Release()
	if err != nil {
		return fmt.Errorf("%w (GPU%d→GPU%d peer)", err, g.Index, dst.Index)
	}
	return nil
}

// KernelTime reports how long one kernel with the given cycle count runs:
// a single kernel gets 1/KernelConcurrency of the SM throughput, so the
// aggregate rate is reached only when the pool is full.
func (g *GPU) KernelTime(cycles float64) sim.Time {
	t := sim.Seconds(cycles * float64(g.Spec.KernelConcurrency) / g.Spec.CyclesPerSec)
	if g.Throttled() {
		t = sim.Time(float64(t) / g.Spec.ThermalFactor)
	}
	return t
}

// Throttled reports whether cumulative kernel activity has crossed the
// thermal limit and the GPU is running down-clocked.
func (g *GPU) Throttled() bool {
	return g.Spec.ThermalLimit > 0 && g.Spec.ThermalFactor > 0 &&
		g.Spec.ThermalFactor < 1 && g.kernelTime > g.Spec.ThermalLimit
}

// LaunchKernel submits a kernel of the given cycle count from stream
// context p and blocks until it completes. The launch overhead is paid
// before entering the SM queue, so concurrent streams overlap it. fn, if
// non-nil, runs at completion time (this is where the functional kernel
// mutates attribute state).
//
// An injected device-OOM fails the launch-time scratch allocation: the
// launch overhead is paid (the driver rejected it after queueing) but no
// SM time elapses and fn does not run. The error wraps
// ErrOutOfDeviceMemory so callers can free cache and relaunch.
func (g *GPU) LaunchKernel(p *sim.Proc, cycles float64, fn func()) error {
	// Capture the injector at entry: the launch belongs to whichever fault
	// domain armed the GPU when it was submitted, even if a shared-run
	// sibling re-arms the GPU while this launch sits in the overhead delay.
	inj := g.inj
	g.kernels.Acquire(p)
	p.Delay(g.Spec.LaunchOverhead)
	if inj.KernelOOM() {
		g.kernels.Release()
		return fmt.Errorf("%w: injected launch-time allocation failure on GPU%d",
			ErrOutOfDeviceMemory, g.Index)
	}
	t := g.KernelTime(cycles)
	g.smPool.Use(p, t)
	g.kernels.Release()
	g.kernelCalls++
	g.kernelTime += t
	if fn != nil {
		fn()
	}
	return nil
}

// NoteSharedCopy records that one resident topology page copy was fanned
// out to extra consumers beyond the stream that paid for it: extra is how
// many additional kernels consumed the bytes, saved the host-to-device
// bytes that fan-out avoided re-transferring. Shared (multi-query) runs
// call this; solo runs never do.
func (g *GPU) NoteSharedCopy(extra int, saved int64) {
	g.sharedServings += int64(extra)
	g.sharedBytesSaved += saved
}

// Stats reports cumulative activity for metrics and the Figure 4 timeline.
func (g *GPU) Stats() GPUStats {
	return GPUStats{
		KernelCalls:      g.kernelCalls,
		KernelTime:       g.kernelTime,
		H2DBytes:         g.h2dBytes,
		D2HBytes:         g.d2hBytes,
		H2DBusy:          g.h2d.BusyTime(),
		D2HBusy:          g.d2h.BusyTime(),
		SharedServings:   g.sharedServings,
		SharedBytesSaved: g.sharedBytesSaved,
	}
}

// GPUStats is a snapshot of one GPU's cumulative activity.
type GPUStats struct {
	KernelCalls int64
	KernelTime  sim.Time
	H2DBytes    int64
	D2HBytes    int64
	// H2DBusy and D2HBusy are how long each DMA engine was occupied —
	// exactly the serialized copy spans of paper Fig. 3.
	H2DBusy sim.Time
	D2HBusy sim.Time
	// SharedServings counts kernel consumptions of resident pages paid for
	// by another job's stream; SharedBytesSaved is the host-to-device
	// traffic that fan-out avoided. Both stay zero outside shared runs.
	SharedServings   int64
	SharedBytesSaved int64
}
