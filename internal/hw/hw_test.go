package hw

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

func testMachine(t *testing.T, gpus, ssds int) (*Machine, *sim.Env) {
	t.Helper()
	env := sim.NewEnv()
	m, err := NewMachine(env, Workstation(gpus, ssds), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	return m, env
}

func TestSpecPresets(t *testing.T) {
	spec := Workstation(2, 2)
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(spec.GPUs) != 2 || spec.GPUs[0].DeviceMemory != 12<<30 {
		t.Error("TITAN X preset wrong")
	}
	if spec.PCIe.ChunkRate != 16e9 || spec.PCIe.StreamRate != 6e9 {
		t.Error("PCI-E rates differ from paper's c1/c2")
	}
	if len(spec.Storage) != 2 || spec.Storage[0].Kind != SSD {
		t.Error("SSD preset wrong")
	}
	hdd := WorkstationHDD(1, 2)
	if len(hdd.Storage) != 2 || hdd.Storage[0].Kind != HDD {
		t.Error("HDD preset wrong")
	}
	if SSD.String() != "SSD" || HDD.String() != "HDD" {
		t.Error("StorageKind.String wrong")
	}
}

func TestSpecValidateRejectsBad(t *testing.T) {
	bad := Workstation(1, 1)
	bad.GPUs = nil
	if bad.Validate() == nil {
		t.Error("no-GPU spec validated")
	}
	bad2 := Workstation(1, 1)
	bad2.PCIe.StreamRate = 0
	if bad2.Validate() == nil {
		t.Error("zero-rate PCI-E validated")
	}
	bad3 := Workstation(1, 1)
	bad3.MainMemory = 0
	if bad3.Validate() == nil {
		t.Error("zero-memory spec validated")
	}
}

func TestScaleDividesCapacitiesOnly(t *testing.T) {
	s := Workstation(2, 2).Scale(1 << 10)
	if s.GPUs[0].DeviceMemory != (12<<30)/1024 {
		t.Errorf("GPU mem = %d", s.GPUs[0].DeviceMemory)
	}
	if s.MainMemory != (128<<30)/1024 {
		t.Errorf("main mem = %d", s.MainMemory)
	}
	if s.PCIe.StreamRate != 6e9 || s.Storage[0].SeqRead != 2.5e9 {
		t.Error("bandwidths must not scale")
	}
	if s.PCIe.Latency != PCIe3x16().Latency/1024 || s.Storage[0].Latency != FusionIOSSD().Latency/1024 {
		t.Error("fixed latencies must scale with capacities")
	}
	// Original untouched.
	if Workstation(2, 2).GPUs[0].DeviceMemory != 12<<30 {
		t.Error("Scale mutated its receiver")
	}
}

func TestGPUMemoryAccounting(t *testing.T) {
	m, _ := testMachine(t, 1, 0)
	g := m.GPUs[0]
	if err := g.Alloc(10 << 30); err != nil {
		t.Fatal(err)
	}
	if g.MemFree() != 2<<30 {
		t.Errorf("MemFree = %d", g.MemFree())
	}
	err := g.Alloc(4 << 30)
	if !errors.Is(err, ErrOutOfDeviceMemory) {
		t.Errorf("overalloc err = %v", err)
	}
	g.Free(10 << 30)
	if g.MemUsed() != 0 {
		t.Errorf("MemUsed = %d", g.MemUsed())
	}
}

func TestGPUCopyRates(t *testing.T) {
	m, env := testMachine(t, 1, 0)
	g := m.GPUs[0]
	var chunkT, streamT sim.Time
	env.Process("p", func(p *sim.Proc) {
		t0 := env.Now()
		g.CopyChunkIn(p, 16e9) // 1 s at c1
		chunkT = env.Now() - t0
		t0 = env.Now()
		g.CopyStreamIn(p, 6e9) // 1 s at c2
		streamT = env.Now() - t0
	})
	env.MustRun()
	want := sim.Second + 10*sim.Microsecond
	if chunkT != want {
		t.Errorf("chunk copy took %v, want %v", chunkT, want)
	}
	if streamT != want {
		t.Errorf("stream copy took %v, want %v", streamT, want)
	}
	st := g.Stats()
	if st.H2DBytes != 16e9+6e9 {
		t.Errorf("H2DBytes = %d", st.H2DBytes)
	}
}

func TestGPUTransfersSerializeButOverlapKernels(t *testing.T) {
	// Paper §3.2: copies cannot overlap each other but overlap kernels.
	m, env := testMachine(t, 1, 0)
	g := m.GPUs[0]
	var end sim.Time
	grp := sim.NewGroup(env)
	grp.Add(2)
	perKernel := g.Spec.CyclesPerSec / float64(g.Spec.KernelConcurrency)
	for i := 0; i < 2; i++ {
		env.Process("stream", func(p *sim.Proc) {
			g.CopyStreamIn(p, 6e9)            // 1 s on the shared engine
			g.LaunchKernel(p, perKernel, nil) // 1 s of compute
			grp.Done()
		})
	}
	env.Process("join", func(p *sim.Proc) {
		grp.Wait(p)
		end = env.Now()
	})
	env.MustRun()
	// Copies at [0,1] and [1,2]; kernels at [1,2] and [2,3] (+epsilons).
	lo, hi := 3*sim.Second, 3*sim.Second+sim.Millisecond
	if end < lo || end > hi {
		t.Errorf("end = %v, want ~3s (copy/kernel overlap)", end)
	}
	// The copy engine's busy-time accounting proves the serialization
	// directly: two 1-second copies keep the H2D engine busy for exactly
	// 2 s, while 2 s of kernel time fits in the same 3 s window — so one
	// kernel-second overlapped a copy-second.
	st := g.Stats()
	if st.H2DBusy < 2*sim.Second || st.H2DBusy > 2*sim.Second+sim.Millisecond {
		t.Errorf("H2D busy = %v, want ~2s (copies must serialize on the engine)", st.H2DBusy)
	}
	if st.D2HBusy != 0 {
		t.Errorf("D2H busy = %v, want 0 (no device-to-host traffic)", st.D2HBusy)
	}
	if st.KernelTime < 2*sim.Second {
		t.Errorf("kernel time = %v, want >= 2s", st.KernelTime)
	}
	if overlap := st.H2DBusy + st.KernelTime - end; overlap < sim.Second-sim.Millisecond {
		t.Errorf("copy/kernel overlap = %v, want ~1s", overlap)
	}
}

func TestGPUPeerCopyFasterThanHostPath(t *testing.T) {
	m, env := testMachine(t, 2, 0)
	var peerT, hostT sim.Time
	env.Process("p", func(p *sim.Proc) {
		t0 := env.Now()
		m.GPUs[0].CopyPeer(p, m.GPUs[1], 20e9)
		peerT = env.Now() - t0
		t0 = env.Now()
		m.GPUs[0].CopyOut(p, 20e9)
		hostT = env.Now() - t0
	})
	env.MustRun()
	if peerT >= hostT {
		t.Errorf("peer copy %v not faster than host copy %v", peerT, hostT)
	}
}

func TestConcurrentKernelsScaleUntilSaturation(t *testing.T) {
	// KernelConcurrency kernels run fully concurrently; one more queues.
	env := sim.NewEnv()
	m, err := NewMachine(env, Workstation(1, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	g := m.GPUs[0]
	kc := g.Spec.KernelConcurrency
	perKernel := g.Spec.CyclesPerSec / float64(kc) // 1 s each
	grp := sim.NewGroup(env)
	grp.Add(kc + 1)
	for i := 0; i < kc+1; i++ {
		env.Process("k", func(p *sim.Proc) {
			g.LaunchKernel(p, perKernel, nil)
			grp.Done()
		})
	}
	var end sim.Time
	env.Process("join", func(p *sim.Proc) { grp.Wait(p); end = env.Now() })
	env.MustRun()
	// kc kernels in [0,1], the extra one in [1,2] (+launch overheads).
	if end < 2*sim.Second || end > 2*sim.Second+sim.Millisecond {
		t.Errorf("end = %v, want ~2s", end)
	}
}

func TestKernelLaunchOverheadOverlapsAcrossStreams(t *testing.T) {
	// With many tiny kernels, 4 streams must beat 1 stream because launch
	// overhead overlaps SM execution — the Figure 10 effect.
	elapsed := func(streams int) sim.Time {
		env := sim.NewEnv()
		m, err := NewMachine(env, Workstation(1, 0), 0)
		if err != nil {
			t.Fatal(err)
		}
		g := m.GPUs[0]
		const kernels = 64
		grp := sim.NewGroup(env)
		grp.Add(streams)
		for s := 0; s < streams; s++ {
			s := s
			env.Process("stream", func(p *sim.Proc) {
				for k := s; k < kernels; k += streams {
					g.LaunchKernel(p, g.Spec.CyclesPerSec/float64(g.Spec.KernelConcurrency)*1e-5, nil) // 10 us kernels
				}
				grp.Done()
			})
		}
		var end sim.Time
		env.Process("join", func(p *sim.Proc) { grp.Wait(p); end = env.Now() })
		env.MustRun()
		return end
	}
	t1, t4 := elapsed(1), elapsed(4)
	if t4 >= t1 {
		t.Errorf("4 streams (%v) not faster than 1 stream (%v)", t4, t1)
	}
}

func TestDeviceSequentialVsRandom(t *testing.T) {
	env := sim.NewEnv()
	d := NewDevice(env, SATAHDD(), 0)
	var seqT, randT sim.Time
	env.Process("p", func(p *sim.Proc) {
		d.Read(p, 0, 165e6) // first read: random rate
		t0 := env.Now()
		d.Read(p, 165e6, 165e6) // continues: sequential, 1 s
		seqT = env.Now() - t0
		t0 = env.Now()
		d.Read(p, 0, 165e6) // seek back: random
		randT = env.Now() - t0
	})
	env.MustRun()
	if seqT >= randT {
		t.Errorf("sequential %v not faster than random %v", seqT, randT)
	}
	total, seq := d.Reads()
	if total != 3 || seq != 1 {
		t.Errorf("reads = %d/%d, want 3 total 1 sequential", total, seq)
	}
}

func TestArrayStriping(t *testing.T) {
	env := sim.NewEnv()
	a := NewArray(env, []StorageSpec{FusionIOSSD(), FusionIOSSD()}, 1<<20)
	if a.DeviceFor(0) != a.Devices[0] || a.DeviceFor(1) != a.Devices[1] || a.DeviceFor(2) != a.Devices[0] {
		t.Error("g(j) = j mod N striping broken")
	}
	if a.AggregateSeqRate() != 5e9 {
		t.Errorf("aggregate rate = %v", a.AggregateSeqRate())
	}
	env.Process("p", func(p *sim.Proc) {
		for pid := uint64(0); pid < 8; pid++ {
			a.ReadPage(p, pid)
		}
	})
	env.MustRun()
	if a.BytesRead() != 8<<20 {
		t.Errorf("BytesRead = %d", a.BytesRead())
	}
	// Consecutive pids on one device are laid out sequentially.
	_, seq := a.Devices[0].Reads()
	if seq != 3 {
		t.Errorf("device 0 sequential reads = %d, want 3", seq)
	}
}

func TestArrayParallelism(t *testing.T) {
	// Two devices serve interleaved pages twice as fast as one.
	read := func(devices int) sim.Time {
		env := sim.NewEnv()
		specs := make([]StorageSpec, devices)
		for i := range specs {
			specs[i] = FusionIOSSD()
		}
		a := NewArray(env, specs, 1<<26)
		grp := sim.NewGroup(env)
		grp.Add(8)
		for pid := uint64(0); pid < 8; pid++ {
			pid := pid
			env.Process("r", func(p *sim.Proc) {
				a.ReadPage(p, pid)
				grp.Done()
			})
		}
		var end sim.Time
		env.Process("join", func(p *sim.Proc) { grp.Wait(p); end = env.Now() })
		env.MustRun()
		return end
	}
	t1, t2 := read(1), read(2)
	if t2*2 > t1*11/10 {
		t.Errorf("2 devices (%v) not ~2x faster than 1 (%v)", t2, t1)
	}
}

func TestHostAccounting(t *testing.T) {
	h := NewHost(1000)
	if err := h.Alloc(900); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(h.Alloc(200), ErrOutOfMemory) {
		t.Error("overalloc accepted")
	}
	h.Free(900)
	if h.Used() != 0 || h.Capacity() != 1000 {
		t.Error("accounting broken")
	}
}

func TestBufferPoolLRU(t *testing.T) {
	b := NewBufferPool(2)
	if b.Contains(1) {
		t.Error("empty pool hit")
	}
	b.Insert(1)
	b.Insert(2)
	if !b.Contains(1) { // 1 becomes MRU
		t.Error("miss on buffered page")
	}
	b.Insert(3) // evicts 2 (LRU)
	if b.Contains(2) {
		t.Error("evicted page still present")
	}
	if !b.Contains(3) || !b.Contains(1) {
		t.Error("wrong page evicted")
	}
	if b.Len() != 2 {
		t.Errorf("Len = %d", b.Len())
	}
	// Hits: 1,3,1; misses: 1,2.
	if b.Hits() != 3 || b.Misses() != 2 {
		t.Errorf("hits/misses = %d/%d", b.Hits(), b.Misses())
	}
	if got := b.HitRate(); got != 0.6 {
		t.Errorf("HitRate = %v", got)
	}
}

func TestBufferPoolUnbounded(t *testing.T) {
	b := NewBufferPool(0)
	for i := uint64(0); i < 1000; i++ {
		b.Insert(i)
	}
	if b.Len() != 1000 {
		t.Errorf("Len = %d", b.Len())
	}
	if !b.Contains(0) {
		t.Error("unbounded pool evicted")
	}
}

func TestBufferPoolReinsertIsNoop(t *testing.T) {
	b := NewBufferPool(2)
	b.Insert(1)
	b.Insert(1)
	if b.Len() != 1 {
		t.Errorf("Len = %d after duplicate insert", b.Len())
	}
}

func TestNewMachineRequiresPageSizeWithStorage(t *testing.T) {
	env := sim.NewEnv()
	if _, err := NewMachine(env, Workstation(1, 2), 0); err == nil {
		t.Error("storage without page size accepted")
	}
	if m, err := NewMachine(env, Workstation(1, 0), 0); err != nil || m.Storage != nil {
		t.Error("no-storage machine must have nil Storage")
	}
}

func TestThermalThrottle(t *testing.T) {
	env := sim.NewEnv()
	spec := TitanX()
	spec.ThermalLimit = 2 * sim.Second
	spec.ThermalFactor = 0.5
	g := NewGPU(env, spec, PCIe3x16(), 0)
	perKernel := spec.CyclesPerSec / float64(spec.KernelConcurrency) // 1 s kernels
	var first, late sim.Time
	env.Process("p", func(p *sim.Proc) {
		t0 := env.Now()
		g.LaunchKernel(p, perKernel, nil)
		first = env.Now() - t0
		g.LaunchKernel(p, perKernel, nil)
		g.LaunchKernel(p, perKernel, nil) // crosses the 2 s limit
		t0 = env.Now()
		g.LaunchKernel(p, perKernel, nil)
		late = env.Now() - t0
	})
	env.MustRun()
	if !g.Throttled() {
		t.Fatal("GPU never throttled")
	}
	if late*10 < first*19 {
		t.Errorf("throttled kernel %v not ~2x slower than cold kernel %v", late, first)
	}
}

func TestThermalDisabledByDefault(t *testing.T) {
	env := sim.NewEnv()
	g := NewGPU(env, TitanX(), PCIe3x16(), 0)
	env.Process("p", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			g.LaunchKernel(p, TitanX().CyclesPerSec, nil)
		}
	})
	env.MustRun()
	if g.Throttled() {
		t.Error("throttle engaged with zero limit")
	}
}
