package hw

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/sim"
)

// Device is one secondary-storage device bound to a simulation environment.
// Reads serialize on the device queue. A read that continues from where the
// previous one ended proceeds at the sequential rate; otherwise at the
// random rate — the distinction that makes HDDs collapse under page-level
// random access (paper Fig. 9).
type Device struct {
	Spec  StorageSpec
	Index int

	env       *sim.Env
	queue     *sim.Resource
	inj       *fault.Injector
	lastEnd   int64 // byte offset where the previous read ended
	bytesRead int64
	reads     int64
	seqReads  int64
}

// NewDevice binds a storage spec to env.
func NewDevice(env *sim.Env, spec StorageSpec, index int) *Device {
	return &Device{Spec: spec, Index: index, env: env, queue: sim.NewResource(env, 1), lastEnd: -1}
}

// InjectFaults arms the device with a fault injector. A nil injector
// restores fault-free behaviour.
func (d *Device) InjectFaults(inj *fault.Injector) { d.inj = inj }

// Read fetches n bytes at byte offset off, blocking p for queueing plus
// service time. An injected storage error fails the read after full
// service time (the device tried, the transfer came back bad); corrupt
// reports that the read "succeeded" but returned damaged data, which the
// caller detects by page checksum.
func (d *Device) Read(p *sim.Proc, off, n int64) (corrupt bool, err error) {
	corrupt, err = d.inj.StorageRead()
	d.queue.Acquire(p)
	rate := d.Spec.RandRead
	if off == d.lastEnd {
		rate = d.Spec.SeqRead
		d.seqReads++
	}
	p.Delay(d.Spec.Latency + sim.ByteTime(n, rate))
	d.lastEnd = off + n
	d.reads++
	d.queue.Release()
	if err != nil {
		return false, fmt.Errorf("%w (device %d, offset %d)", err, d.Index, off)
	}
	d.bytesRead += n
	return corrupt, nil
}

// BytesRead reports cumulative bytes served.
func (d *Device) BytesRead() int64 { return d.bytesRead }

// Reads reports total and sequential request counts.
func (d *Device) Reads() (total, sequential int64) { return d.reads, d.seqReads }

// Array stripes pages across devices with the paper's hash g(j): page j
// lives on device j mod N (§4.1), so streaming reads fan out over all
// spindles.
type Array struct {
	Devices []*Device
	// pageSize fixes each page's on-device layout for offset computation.
	pageSize int64
}

// NewArray builds an array over the given specs.
func NewArray(env *sim.Env, specs []StorageSpec, pageSize int64) *Array {
	a := &Array{pageSize: pageSize}
	for i, s := range specs {
		a.Devices = append(a.Devices, NewDevice(env, s, i))
	}
	return a
}

// DeviceFor returns g(pid): the device holding page pid.
func (a *Array) DeviceFor(pid uint64) *Device {
	return a.Devices[pid%uint64(len(a.Devices))]
}

// InjectFaults arms every device in the array with the same injector.
func (a *Array) InjectFaults(inj *fault.Injector) {
	for _, d := range a.Devices {
		d.InjectFaults(inj)
	}
}

// ReadPage fetches page pid, blocking p. Pages are laid out in pid order on
// each device, so a scan over consecutive pids is sequential per device.
// corrupt means the page arrived damaged (caller verifies the checksum and
// re-reads); err means the read failed outright.
func (a *Array) ReadPage(p *sim.Proc, pid uint64) (corrupt bool, err error) {
	n := uint64(len(a.Devices))
	d := a.Devices[pid%n]
	off := int64(pid/n) * a.pageSize
	return d.Read(p, off, a.pageSize)
}

// AggregateSeqRate reports the combined sequential bandwidth, the bound the
// paper's §7.5 back-of-envelope checks use.
func (a *Array) AggregateSeqRate() float64 {
	var r float64
	for _, d := range a.Devices {
		r += d.Spec.SeqRead
	}
	return r
}

// BytesRead reports cumulative bytes served across all devices.
func (a *Array) BytesRead() int64 {
	var n int64
	for _, d := range a.Devices {
		n += d.BytesRead()
	}
	return n
}
