package hw

import (
	"container/list"
	"errors"
	"fmt"

	"repro/internal/fault"
	"repro/internal/sim"
)

// ErrOutOfMemory reports that a host-memory allocation exceeded the
// machine's main memory — the outcome the paper tabulates as "O.O.M." for
// the baseline systems (Fig. 6, Fig. 7).
var ErrOutOfMemory = errors.New("hw: out of main memory")

// Host accounts main-memory usage for one machine.
type Host struct {
	capacity int64
	used     int64
}

// NewHost returns a host-memory accountant with the given capacity.
func NewHost(capacity int64) *Host { return &Host{capacity: capacity} }

// Alloc reserves n bytes of main memory.
func (h *Host) Alloc(n int64) error {
	if h.used+n > h.capacity {
		return fmt.Errorf("%w: need %d, %d free", ErrOutOfMemory, n, h.capacity-h.used)
	}
	h.used += n
	return nil
}

// Free releases n bytes.
func (h *Host) Free(n int64) {
	h.used -= n
	if h.used < 0 {
		panic("hw: Host.Free released more than allocated")
	}
}

// Used reports allocated bytes; Capacity the total.
func (h *Host) Used() int64     { return h.used }
func (h *Host) Capacity() int64 { return h.capacity }

// BufferPool is the main-memory page buffer (the paper's MMBuf with its
// bufferPIDMap, Algorithm 1 lines 18-26): pages fetched from storage are
// kept, LRU-evicted when full, so re-accessed pages skip the SSD.
type BufferPool struct {
	capacity int // in pages; 0 means unbounded (whole graph fits)
	entries  map[uint64]*list.Element
	lru      *list.List // front = most recently used; values are page IDs
	hits     int64
	misses   int64
}

// NewBufferPool returns a pool holding at most capacity pages
// (0 = unbounded).
func NewBufferPool(capacity int) *BufferPool {
	return &BufferPool{capacity: capacity, entries: make(map[uint64]*list.Element), lru: list.New()}
}

// Contains reports whether pid is buffered, updating recency and hit/miss
// counters.
func (b *BufferPool) Contains(pid uint64) bool {
	if e, ok := b.entries[pid]; ok {
		b.lru.MoveToFront(e)
		b.hits++
		return true
	}
	b.misses++
	return false
}

// Insert adds pid, evicting the least recently used page if full.
func (b *BufferPool) Insert(pid uint64) {
	if e, ok := b.entries[pid]; ok {
		b.lru.MoveToFront(e)
		return
	}
	if b.capacity > 0 && b.lru.Len() >= b.capacity {
		old := b.lru.Back()
		b.lru.Remove(old)
		delete(b.entries, old.Value.(uint64))
	}
	b.entries[pid] = b.lru.PushFront(pid)
}

// Shrink lowers the page limit to newCap (minimum 1 — use nil to disable
// a cache entirely), evicting LRU pages beyond it, and returns how many
// pages it evicted. Used by the device-OOM degradation path, which halves
// the page cache instead of abandoning it.
func (b *BufferPool) Shrink(newCap int) int {
	if newCap < 1 {
		newCap = 1
	}
	b.capacity = newCap
	evicted := 0
	for b.lru.Len() > b.capacity {
		old := b.lru.Back()
		b.lru.Remove(old)
		delete(b.entries, old.Value.(uint64))
		evicted++
	}
	return evicted
}

// Grow raises the page limit to newCap (no-op if the pool is already at
// least that large). Used when the OOM degradation's transient memory
// pressure has passed and the cache budget is restored.
func (b *BufferPool) Grow(newCap int) {
	if newCap > b.capacity {
		b.capacity = newCap
	}
}

// Len reports the buffered page count.
func (b *BufferPool) Len() int { return b.lru.Len() }

// Capacity reports the page limit (0 = unbounded).
func (b *BufferPool) Capacity() int { return b.capacity }

// HitRate reports hits/(hits+misses), or 0 before any lookup.
func (b *BufferPool) HitRate() float64 {
	total := b.hits + b.misses
	if total == 0 {
		return 0
	}
	return float64(b.hits) / float64(total)
}

// Hits and Misses report raw lookup counters.
func (b *BufferPool) Hits() int64   { return b.hits }
func (b *BufferPool) Misses() int64 { return b.misses }

// Machine assembles a full workstation bound to one simulation environment.
type Machine struct {
	Env     *sim.Env
	Spec    MachineSpec
	GPUs    []*GPU
	Host    *Host
	Storage *Array // nil when the graph is served from main memory
}

// NewMachine instantiates spec's devices in env. pageSize sets the storage
// array's page layout; pass 0 when no storage is configured.
func NewMachine(env *sim.Env, spec MachineSpec, pageSize int64) (*Machine, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{Env: env, Spec: spec, Host: NewHost(spec.MainMemory)}
	for i, g := range spec.GPUs {
		m.GPUs = append(m.GPUs, NewGPU(env, g, spec.PCIe, i))
	}
	if len(spec.Storage) > 0 {
		if pageSize <= 0 {
			return nil, fmt.Errorf("hw: storage configured but page size %d invalid", pageSize)
		}
		m.Storage = NewArray(env, spec.Storage, pageSize)
	}
	return m, nil
}

// InjectFaults arms every GPU and storage device with the same fault
// injector (typically one per engine run). A nil injector disarms them.
func (m *Machine) InjectFaults(inj *fault.Injector) {
	for _, g := range m.GPUs {
		g.InjectFaults(inj)
	}
	if m.Storage != nil {
		m.Storage.InjectFaults(inj)
	}
}
