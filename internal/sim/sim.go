// Package sim provides a deterministic discrete-event simulation core.
//
// It follows the process-interaction style (as in SimPy): model entities are
// goroutines that block on virtual-time delays and resource acquisitions. The
// scheduler runs exactly one process goroutine at a time and orders events by
// (virtual time, insertion sequence), so a simulation is reproducible
// bit-for-bit regardless of host scheduling.
//
// All of the hardware models in internal/hw (GPUs, PCI-E links, SSDs) and the
// cluster interconnect model in internal/cluster are built on this package.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in (or span of) virtual time, in nanoseconds.
type Time int64

// Common spans of virtual time.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts a floating-point number of seconds to a Time.
func Seconds(s float64) Time { return Time(math.Round(s * float64(Second))) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats t in seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Seconds()) }

// ByteTime reports how long transferring n bytes takes at rate bytes/second.
// A non-positive rate yields zero time (an infinitely fast link).
func ByteTime(n int64, bytesPerSec float64) Time {
	if bytesPerSec <= 0 || n <= 0 {
		return 0
	}
	return Seconds(float64(n) / bytesPerSec)
}

// event is a scheduled callback. Events with equal time fire in insertion
// order (seq), which is what makes the simulation deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Env is a simulation environment: a virtual clock plus an event queue.
// Create one with NewEnv, start processes with Process, then call Run.
// An Env must not be shared between concurrently running simulations.
type Env struct {
	now     Time
	seq     uint64
	events  eventHeap
	yield   chan struct{} // signalled when the running process blocks or ends
	failure error         // first panic captured from a process
	nprocs  int           // live processes, for leak detection
}

// NewEnv returns an empty environment at virtual time zero.
func NewEnv() *Env {
	return &Env{yield: make(chan struct{})}
}

// Now reports the current virtual time.
func (e *Env) Now() Time { return e.now }

// Schedule registers fn to run at absolute virtual time at. Scheduling in the
// past (at < Now) panics: it would make the clock run backwards.
func (e *Env) Schedule(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", at, e.now))
	}
	e.seq++
	heap.Push(&e.events, &event{at: at, seq: e.seq, fn: fn})
}

// After registers fn to run d from now.
func (e *Env) After(d Time, fn func()) { e.Schedule(e.now+d, fn) }

// Proc is the handle a process goroutine uses to interact with virtual time.
// A Proc is only valid inside the function passed to Process.
type Proc struct {
	env    *Env
	name   string
	resume chan struct{}
}

// Env returns the environment this process runs in.
func (p *Proc) Env() *Env { return p.env }

// Name returns the process name given to Process.
func (p *Proc) Name() string { return p.name }

// Handle tracks a started process and lets other processes join on it.
type Handle struct {
	done *Signal
}

// Done returns a one-shot signal fired when the process function returns.
func (h *Handle) Done() *Signal { return h.done }

// Process starts fn as a simulation process at the current virtual time.
// fn runs in its own goroutine but only while no other process is running.
func (e *Env) Process(name string, fn func(p *Proc)) *Handle {
	h := &Handle{done: NewSignal(e)}
	p := &Proc{env: e, name: name, resume: make(chan struct{})}
	e.nprocs++
	e.After(0, func() {
		go func() {
			defer func() {
				if r := recover(); r != nil && e.failure == nil {
					e.failure = fmt.Errorf("sim: process %q panicked: %v", name, r)
				}
				e.nprocs--
				h.done.Fire()
				e.yield <- struct{}{}
			}()
			<-p.resume
			fn(p)
		}()
		// Hand control to the new process and wait for it to block or end.
		p.resume <- struct{}{}
		<-e.yield
	})
	return h
}

// block suspends the calling process until something resumes it, returning
// control to the scheduler.
func (p *Proc) block() {
	p.env.yield <- struct{}{}
	<-p.resume
}

// wake schedules the process to resume at absolute time at.
func (p *Proc) wakeAt(at Time) {
	p.env.Schedule(at, func() {
		p.resume <- struct{}{}
		<-p.env.yield
	})
}

// wakeNow schedules the process to resume at the current time, after events
// already queued for this instant.
func (p *Proc) wakeNow() { p.wakeAt(p.env.now) }

// Delay suspends the process for d of virtual time. Negative delays are
// treated as zero.
func (p *Proc) Delay(d Time) {
	if d < 0 {
		d = 0
	}
	p.wakeAt(p.env.now + d)
	p.block()
}

// Yield gives other events scheduled at the current instant a chance to run.
func (p *Proc) Yield() { p.Delay(0) }

// Run executes events until the queue drains, then returns the final virtual
// time. It returns an error if any process panicked or if processes are still
// blocked when the queue empties (a deadlock).
func (e *Env) Run() (Time, error) {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.at
		ev.fn()
		if e.failure != nil {
			return e.now, e.failure
		}
	}
	if e.nprocs > 0 {
		return e.now, fmt.Errorf("sim: deadlock: %d process(es) still blocked at %v", e.nprocs, e.now)
	}
	return e.now, nil
}

// MustRun is Run for simulations that are bugs-only-fail: it panics on error.
func (e *Env) MustRun() Time {
	t, err := e.Run()
	if err != nil {
		panic(err)
	}
	return t
}

// Signal is a one-shot broadcast event. Processes that Wait before Fire are
// resumed when it fires; waits after Fire return immediately.
type Signal struct {
	env     *Env
	fired   bool
	waiters []*Proc
}

// NewSignal returns an unfired signal bound to env.
func NewSignal(env *Env) *Signal { return &Signal{env: env} }

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// Fire fires the signal, waking all current waiters. Firing twice is a no-op.
func (s *Signal) Fire() {
	if s.fired {
		return
	}
	s.fired = true
	for _, w := range s.waiters {
		w.wakeNow()
	}
	s.waiters = nil
}

// Wait suspends p until the signal fires.
func (s *Signal) Wait(p *Proc) {
	if s.fired {
		return
	}
	s.waiters = append(s.waiters, p)
	p.block()
}

// Group counts outstanding work, like sync.WaitGroup but in virtual time.
type Group struct {
	env     *Env
	count   int
	waiters []*Proc
}

// NewGroup returns a group with zero outstanding work.
func NewGroup(env *Env) *Group { return &Group{env: env} }

// Add increases the outstanding count by n.
func (g *Group) Add(n int) { g.count += n }

// Done decrements the outstanding count, waking waiters at zero.
func (g *Group) Done() {
	g.count--
	if g.count < 0 {
		panic("sim: Group.Done called more times than Add")
	}
	if g.count == 0 {
		for _, w := range g.waiters {
			w.wakeNow()
		}
		g.waiters = nil
	}
}

// Wait suspends p until the outstanding count reaches zero.
func (g *Group) Wait(p *Proc) {
	if g.count == 0 {
		return
	}
	g.waiters = append(g.waiters, p)
	p.block()
}

// Resource is a FIFO multi-server resource: at most Capacity processes hold
// it at once; the rest queue in arrival order.
type Resource struct {
	env      *Env
	capacity int
	inUse    int
	queue    []*Proc
	// Busy accumulates server-seconds of utilization for reporting.
	busy     Time
	lastTick Time
}

// NewResource returns a resource with the given server count (capacity >= 1).
func NewResource(env *Env, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{env: env, capacity: capacity}
}

func (r *Resource) account() {
	r.busy += Time(r.inUse) * (r.env.now - r.lastTick)
	r.lastTick = r.env.now
}

// Acquire blocks p until a server is free, then claims it.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity && len(r.queue) == 0 {
		r.account()
		r.inUse++
		return
	}
	r.queue = append(r.queue, p)
	p.block()
	// The releaser transferred a server to us (see Release).
}

// Release frees a server, handing it to the longest-waiting process if any.
func (r *Resource) Release() {
	r.account()
	if len(r.queue) > 0 {
		next := r.queue[0]
		r.queue = r.queue[1:]
		// Server ownership transfers directly; inUse is unchanged.
		next.wakeNow()
		return
	}
	r.inUse--
	if r.inUse < 0 {
		panic("sim: Resource.Release without matching Acquire")
	}
}

// Use acquires the resource, holds it for d, and releases it.
func (r *Resource) Use(p *Proc, d Time) {
	r.Acquire(p)
	p.Delay(d)
	r.Release()
}

// InUse reports the number of servers currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen reports the number of processes waiting.
func (r *Resource) QueueLen() int { return len(r.queue) }

// BusyTime reports accumulated server-seconds of utilization.
func (r *Resource) BusyTime() Time {
	r.account()
	return r.busy
}

// Pipe models a bandwidth-limited link with a fixed number of channels.
// Each transfer claims one channel for bytes/rate seconds, so concurrent
// transfers beyond the channel count serialize FIFO — exactly how a DMA
// copy engine behaves.
type Pipe struct {
	res         *Resource
	bytesPerSec float64
	latency     Time
	transferred int64
}

// NewPipe returns a pipe with the given per-channel bandwidth, a fixed
// per-transfer latency, and the given channel count.
func NewPipe(env *Env, bytesPerSec float64, latency Time, channels int) *Pipe {
	return &Pipe{res: NewResource(env, channels), bytesPerSec: bytesPerSec, latency: latency}
}

// Transfer moves n bytes through the pipe, blocking p for queueing plus
// latency plus n/bandwidth.
func (pp *Pipe) Transfer(p *Proc, n int64) {
	pp.res.Acquire(p)
	p.Delay(pp.latency + ByteTime(n, pp.bytesPerSec))
	pp.res.Release()
	pp.transferred += n
}

// TransferTime reports the service time (excluding queueing) for n bytes.
func (pp *Pipe) TransferTime(n int64) Time { return pp.latency + ByteTime(n, pp.bytesPerSec) }

// Transferred reports total bytes moved through the pipe.
func (pp *Pipe) Transferred() int64 { return pp.transferred }

// BytesPerSec reports the per-channel bandwidth.
func (pp *Pipe) BytesPerSec() float64 { return pp.bytesPerSec }

// BusyTime reports accumulated channel-seconds of utilization.
func (pp *Pipe) BusyTime() Time { return pp.res.BusyTime() }
