package sim

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if Seconds(1.5) != 1500*Millisecond {
		t.Errorf("Seconds(1.5) = %v, want 1.5s", Seconds(1.5))
	}
	if got := (2500 * Millisecond).Seconds(); got != 2.5 {
		t.Errorf("Seconds() = %v, want 2.5", got)
	}
	if got := (1234 * Millisecond).String(); got != "1.234s" {
		t.Errorf("String() = %q, want 1.234s", got)
	}
}

func TestByteTime(t *testing.T) {
	tests := []struct {
		n    int64
		rate float64
		want Time
	}{
		{1 << 30, 1 << 30, Second},            // 1 GiB at 1 GiB/s
		{0, 1e9, 0},                           // nothing to move
		{1 << 20, 0, 0},                       // infinitely fast link
		{-5, 1e9, 0},                          // negative sizes clamp to zero
		{2 << 30, 1 << 30, 2 * Second},        // 2 GiB at 1 GiB/s
		{1 << 29, 1 << 30, 500 * Millisecond}, // half
	}
	for _, tc := range tests {
		if got := ByteTime(tc.n, tc.rate); got != tc.want {
			t.Errorf("ByteTime(%d, %v) = %v, want %v", tc.n, tc.rate, got, tc.want)
		}
	}
}

func TestByteTimeMonotonic(t *testing.T) {
	// Property: more bytes never take less time at a fixed rate.
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return ByteTime(x, 1e9) <= ByteTime(y, 1e9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScheduleOrdering(t *testing.T) {
	env := NewEnv()
	var order []int
	env.Schedule(2*Second, func() { order = append(order, 3) })
	env.Schedule(1*Second, func() { order = append(order, 1) })
	env.Schedule(1*Second, func() { order = append(order, 2) }) // same time: insertion order
	end, err := env.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end != 2*Second {
		t.Errorf("end = %v, want 2s", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	env := NewEnv()
	env.Schedule(Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		env.Schedule(0, func() {})
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProcessDelay(t *testing.T) {
	env := NewEnv()
	var at Time
	env.Process("p", func(p *Proc) {
		p.Delay(3 * Second)
		at = env.Now()
		p.Delay(-1) // negative treated as zero
		if env.Now() != at {
			t.Errorf("negative delay advanced time to %v", env.Now())
		}
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 3*Second {
		t.Errorf("woke at %v, want 3s", at)
	}
}

func TestProcessesInterleaveDeterministically(t *testing.T) {
	env := NewEnv()
	var log []string
	for _, name := range []string{"a", "b"} {
		name := name
		env.Process(name, func(p *Proc) {
			for i := 0; i < 3; i++ {
				log = append(log, name)
				p.Delay(Second)
			}
		})
	}
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := "a b a b a b"
	if got := strings.Join(log, " "); got != want {
		t.Errorf("log = %q, want %q", got, want)
	}
}

func TestProcessPanicPropagates(t *testing.T) {
	env := NewEnv()
	env.Process("boom", func(p *Proc) {
		p.Delay(Second)
		panic("kaboom")
	})
	_, err := env.Run()
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("err = %v, want panic message", err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	env := NewEnv()
	s := NewSignal(env)
	env.Process("stuck", func(p *Proc) { s.Wait(p) })
	_, err := env.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("err = %v, want deadlock", err)
	}
}

func TestSignalBroadcast(t *testing.T) {
	env := NewEnv()
	s := NewSignal(env)
	woke := 0
	for i := 0; i < 3; i++ {
		env.Process("w", func(p *Proc) {
			s.Wait(p)
			woke++
			if env.Now() != 5*Second {
				t.Errorf("woke at %v, want 5s", env.Now())
			}
		})
	}
	env.Process("firer", func(p *Proc) {
		p.Delay(5 * Second)
		s.Fire()
		s.Fire() // double fire is a no-op
	})
	// A late waiter sees the signal already fired.
	env.Process("late", func(p *Proc) {
		p.Delay(6 * Second)
		s.Wait(p)
		woke++
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 4 {
		t.Errorf("woke = %d, want 4", woke)
	}
	if !s.Fired() {
		t.Error("signal not marked fired")
	}
}

func TestHandleDoneJoin(t *testing.T) {
	env := NewEnv()
	h := env.Process("worker", func(p *Proc) { p.Delay(2 * Second) })
	var joined Time
	env.Process("joiner", func(p *Proc) {
		h.Done().Wait(p)
		joined = env.Now()
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if joined != 2*Second {
		t.Errorf("joined at %v, want 2s", joined)
	}
}

func TestGroupJoin(t *testing.T) {
	env := NewEnv()
	g := NewGroup(env)
	g.Add(3)
	for i := 1; i <= 3; i++ {
		d := Time(i) * Second
		env.Process("w", func(p *Proc) {
			p.Delay(d)
			g.Done()
		})
	}
	var joined Time
	env.Process("joiner", func(p *Proc) {
		g.Wait(p)
		joined = env.Now()
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if joined != 3*Second {
		t.Errorf("joined at %v, want 3s (slowest worker)", joined)
	}
}

func TestGroupWaitOnZeroReturnsImmediately(t *testing.T) {
	env := NewEnv()
	g := NewGroup(env)
	ran := false
	env.Process("p", func(p *Proc) {
		g.Wait(p)
		ran = true
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("process never ran")
	}
}

func TestResourceSerializes(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, 1)
	var finishes []Time
	for i := 0; i < 3; i++ {
		env.Process("u", func(p *Proc) {
			r.Use(p, Second)
			finishes = append(finishes, env.Now())
		})
	}
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{Second, 2 * Second, 3 * Second}
	for i, w := range want {
		if finishes[i] != w {
			t.Errorf("finish[%d] = %v, want %v", i, finishes[i], w)
		}
	}
	if got := r.BusyTime(); got != 3*Second {
		t.Errorf("BusyTime = %v, want 3s", got)
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, 2)
	var finishes []Time
	for i := 0; i < 4; i++ {
		env.Process("u", func(p *Proc) {
			r.Use(p, Second)
			finishes = append(finishes, env.Now())
		})
	}
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// Two run in [0,1], two in [1,2].
	want := []Time{Second, Second, 2 * Second, 2 * Second}
	for i, w := range want {
		if finishes[i] != w {
			t.Errorf("finish[%d] = %v, want %v", i, finishes[i], w)
		}
	}
}

func TestResourceFIFO(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, 1)
	var order []string
	for _, name := range []string{"first", "second", "third"} {
		name := name
		env.Process(name, func(p *Proc) {
			r.Acquire(p)
			order = append(order, name)
			p.Delay(Second)
			r.Release()
		})
	}
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if strings.Join(order, ",") != "first,second,third" {
		t.Errorf("order = %v, want FIFO", order)
	}
}

func TestResourceInvalidCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("capacity 0 did not panic")
		}
	}()
	NewResource(NewEnv(), 0)
}

func TestPipeSerializesTransfers(t *testing.T) {
	env := NewEnv()
	// 1 GB/s, no latency, one channel: two 1 GB transfers take 2 s total.
	pipe := NewPipe(env, 1e9, 0, 1)
	var last Time
	for i := 0; i < 2; i++ {
		env.Process("t", func(p *Proc) {
			pipe.Transfer(p, 1e9)
			last = env.Now()
		})
	}
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if last != 2*Second {
		t.Errorf("last transfer finished at %v, want 2s", last)
	}
	if pipe.Transferred() != 2e9 {
		t.Errorf("Transferred = %d, want 2e9", pipe.Transferred())
	}
}

func TestPipeLatency(t *testing.T) {
	env := NewEnv()
	pipe := NewPipe(env, 1e9, 100*Microsecond, 1)
	if got, want := pipe.TransferTime(1e9), Second+100*Microsecond; got != want {
		t.Errorf("TransferTime = %v, want %v", got, want)
	}
	var done Time
	env.Process("t", func(p *Proc) {
		pipe.Transfer(p, 5e8)
		done = env.Now()
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if want := 500*Millisecond + 100*Microsecond; done != want {
		t.Errorf("done = %v, want %v", done, want)
	}
}

func TestMustRunPanicsOnError(t *testing.T) {
	env := NewEnv()
	env.Process("boom", func(p *Proc) { panic("x") })
	defer func() {
		if recover() == nil {
			t.Error("MustRun did not panic")
		}
	}()
	env.MustRun()
}

// TestPipelineOverlap models the paper's Figure 3: k streams each doing
// (copy SP, copy RA, kernel) where copies share one engine but kernels run
// concurrently. With kernel time = 2x copy time and 2 streams, copies hide
// entirely behind kernels after warmup.
func TestPipelineOverlap(t *testing.T) {
	env := NewEnv()
	copyEngine := NewResource(env, 1)
	const (
		copyT     = Time(Second)
		kernelT   = Time(2 * Second)
		perStream = 2 // pages per stream
	)
	g := NewGroup(env)
	g.Add(2)
	for s := 0; s < 2; s++ {
		env.Process("stream", func(p *Proc) {
			for i := 0; i < perStream; i++ {
				copyEngine.Use(p, copyT) // copy serializes
				p.Delay(kernelT)         // kernel overlaps
			}
			g.Done()
		})
	}
	var end Time
	env.Process("main", func(p *Proc) {
		g.Wait(p)
		end = env.Now()
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// Stream A: copy [0,1] kernel [1,3] copy [3,4] kernel [4,6].
	// Stream B: copy [1,2] kernel [2,4] copy [4,5] kernel [5,7].
	if end != 7*Second {
		t.Errorf("pipeline end = %v, want 7s", end)
	}
}
