package verify

import (
	"math"
	"testing"

	"repro/internal/graphgen"
)

func TestBFSOnPath(t *testing.T) {
	g := graphgen.Path(5)
	lv := BFS(g, 1)
	want := []int16{-1, 0, 1, 2, 3}
	for i, w := range want {
		if lv[i] != w {
			t.Errorf("lv[%d] = %d, want %d", i, lv[i], w)
		}
	}
}

func TestBFSOnStar(t *testing.T) {
	g := graphgen.Star(6)
	lv := BFS(g, 0)
	if lv[0] != 0 {
		t.Error("source level")
	}
	for i := 1; i < 6; i++ {
		if lv[i] != 1 {
			t.Errorf("spoke %d level = %d", i, lv[i])
		}
	}
}

func TestPageRankSumsToOneOnCycle(t *testing.T) {
	// On a cycle there are no dangling vertices, so mass is conserved.
	g := graphgen.Cycle(10)
	pr := PageRank(g, 0.85, 20)
	var sum float64
	for _, v := range pr {
		sum += v
		// Symmetry: every vertex has the same rank.
		if math.Abs(v-0.1) > 1e-12 {
			t.Errorf("rank %v, want 0.1", v)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("sum = %v", sum)
	}
}

func TestPageRankStarConcentratesOnSpokes(t *testing.T) {
	g := graphgen.Star(5)
	pr := PageRank(g, 0.85, 10)
	for i := 1; i < 5; i++ {
		if pr[i] <= pr[0] {
			t.Errorf("spoke %d rank %v not above hub %v", i, pr[i], pr[0])
		}
	}
}

func TestSSSPOnPathUnitWeights(t *testing.T) {
	g := graphgen.Path(6)
	unit := func(u, v uint64) float32 { return 1 }
	d := SSSP(g, 0, unit)
	for i := 0; i < 6; i++ {
		if d[i] != float64(i) {
			t.Errorf("d[%d] = %v", i, d[i])
		}
	}
}

func TestSSSPPicksCheaperRoute(t *testing.T) {
	// 0->1->2 (cost 1+1) vs 0->2 (cost 10).
	g := graphgen.Complete(3)
	w := func(u, v uint64) float32 {
		if u == 0 && v == 2 {
			return 10
		}
		return 1
	}
	d := SSSP(g, 0, w)
	if d[2] != 2 {
		t.Errorf("d[2] = %v, want 2", d[2])
	}
}

func TestSSSPUnreachableIsInf(t *testing.T) {
	g := graphgen.Path(3) // directed: 2 cannot reach 0
	d := SSSP(g, 2, func(u, v uint64) float32 { return 1 })
	if !math.IsInf(d[0], 1) {
		t.Errorf("d[0] = %v, want +Inf", d[0])
	}
}

func TestWCCTwoComponents(t *testing.T) {
	g := graphgen.Path(4) // 0-1-2-3 one component
	labels := WCC(g)
	for i := 0; i < 4; i++ {
		if labels[i] != 0 {
			t.Errorf("label[%d] = %d", i, labels[i])
		}
	}
	// A graph of two disjoint edges.
	g2 := graphgen.Grid(1, 2) // 0-1
	_ = g2
	labels2 := WCC(graphgen.Path(2))
	if labels2[0] != 0 || labels2[1] != 0 {
		t.Error("single edge component broken")
	}
}

func TestWCCDirectionIgnored(t *testing.T) {
	// Directed path: WCC must still treat it as one component.
	g := graphgen.Path(10)
	labels := WCC(g)
	for i, l := range labels {
		if l != 0 {
			t.Errorf("label[%d] = %d", i, l)
		}
	}
}

func TestBCOnPath(t *testing.T) {
	// Path 0->1->2->3: from source 0, delta(1) = 2 (broker for 2,3),
	// delta(2) = 1, delta(3) = 0.
	g := graphgen.Path(4)
	bc := BC(g, 0)
	want := []float64{0, 2, 1, 0}
	for i, w := range want {
		if math.Abs(bc[i]-w) > 1e-12 {
			t.Errorf("bc[%d] = %v, want %v", i, bc[i], w)
		}
	}
}

func TestBCOnDiamond(t *testing.T) {
	// 0->1, 0->2, 1->3, 2->3: two shortest paths to 3, each middle vertex
	// carries half.
	g := graphgen.Grid(2, 2)
	bc := BC(g, 0)
	if math.Abs(bc[1]-0.5) > 1e-12 || math.Abs(bc[2]-0.5) > 1e-12 {
		t.Errorf("bc = %v", bc)
	}
	if bc[0] != 0 || bc[3] != 0 {
		t.Errorf("endpoints must be 0: %v", bc)
	}
}

func TestReferenceAlgorithmsOnRMAT(t *testing.T) {
	// Smoke: the references terminate and produce sane output on a skewed
	// graph.
	d, _ := graphgen.ByName("RMAT27")
	g := d.MustGenerate(17) // scale 10
	lv := BFS(g, 0)
	reached := 0
	for _, l := range lv {
		if l >= 0 {
			reached++
		}
	}
	if reached < 2 {
		t.Error("BFS reached almost nothing")
	}
	pr := PageRank(g, 0.85, 5)
	var sum float64
	for _, v := range pr {
		if v < 0 {
			t.Fatal("negative rank")
		}
		sum += v
	}
	if sum <= 0 || sum > 1.0001 {
		t.Errorf("rank mass = %v", sum)
	}
}

func TestRWRMassConservedOnCycle(t *testing.T) {
	g := graphgen.Cycle(8)
	scores := RWR(g, 0, 0.15, 30)
	var sum float64
	for _, s := range scores {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("mass = %v", sum)
	}
	// Proximity decays with distance from the source around the cycle.
	if !(scores[0] > scores[1] && scores[1] > scores[2]) {
		t.Errorf("scores not decaying: %v", scores[:4])
	}
}

func TestRWRSourceDominates(t *testing.T) {
	d, _ := graphgen.ByName("RMAT27")
	g := d.MustGenerate(27 - 10)
	scores := RWR(g, 5, 0.15, 10)
	for v, s := range scores {
		if uint32(v) != 5 && s > scores[5] {
			t.Fatalf("vertex %d (%v) outranks the source (%v)", v, s, scores[5])
		}
	}
}

func TestKCorePeeling(t *testing.T) {
	// Every vertex of a 4-clique survives the 2-core.
	g := graphgen.Complete(4)
	all := KCore(g, 2)
	for v := 0; v < 4; v++ {
		if !all[v] {
			t.Errorf("clique vertex %d peeled from 2-core", v)
		}
	}
	// On a path, the 2-core is empty (endpoints peel, then everything).
	p := KCore(graphgen.Path(10), 2)
	for v, a := range p {
		if a {
			t.Errorf("path vertex %d survived the 2-core", v)
		}
	}
	// The 1-core of a path keeps everything.
	p1 := KCore(graphgen.Path(10), 1)
	for v, a := range p1 {
		if !a {
			t.Errorf("path vertex %d peeled from 1-core", v)
		}
	}
}
