// Package verify holds straightforward sequential reference implementations
// of every graph algorithm in the repository. All engines — GTS itself and
// each baseline — are tested for exact (or tolerance-bounded, for floating
// point) agreement with these.
package verify

import (
	"container/heap"
	"math"

	"repro/internal/csr"
)

// BFS returns per-vertex traversal levels from src; unreachable vertices
// hold -1.
func BFS(g *csr.Graph, src uint32) []int16 {
	lv := make([]int16, g.NumVertices())
	for i := range lv {
		lv[i] = -1
	}
	lv[src] = 0
	frontier := []uint32{src}
	for level := int16(0); len(frontier) > 0; level++ {
		var next []uint32
		for _, v := range frontier {
			for _, n := range g.Out(v) {
				if lv[n] == -1 {
					lv[n] = level + 1
					next = append(next, n)
				}
			}
		}
		frontier = next
	}
	return lv
}

// PageRank runs the paper's formulation for a fixed iteration count:
// next(v) = (1-df)/|V| + df * sum over in-edges u->v of prev(u)/outdeg(u),
// with a uniform prior and no dangling-mass redistribution (matching the
// Appendix B kernels).
func PageRank(g *csr.Graph, df float64, iterations int) []float64 {
	n := int(g.NumVertices())
	prev := make([]float64, n)
	next := make([]float64, n)
	base := (1 - df) / float64(n)
	for i := range prev {
		prev[i] = 1 / float64(n)
	}
	for it := 0; it < iterations; it++ {
		for i := range next {
			next[i] = base
		}
		for v := 0; v < n; v++ {
			out := g.Out(uint32(v))
			if len(out) == 0 {
				continue
			}
			c := df * prev[v] / float64(len(out))
			for _, t := range out {
				next[t] += c
			}
		}
		prev, next = next, prev
	}
	return prev
}

// distItem is a priority-queue entry for Dijkstra.
type distItem struct {
	v   uint32
	d   float64
	idx int
}

type distHeap []*distItem

func (h distHeap) Len() int           { return len(h) }
func (h distHeap) Less(i, j int) bool { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].idx = i; h[j].idx = j }
func (h *distHeap) Push(x any)        { it := x.(*distItem); it.idx = len(*h); *h = append(*h, it) }
func (h *distHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// SSSP returns shortest-path distances from src under the weight function w;
// unreachable vertices hold +Inf. Weights must be non-negative.
func SSSP(g *csr.Graph, src uint32, w func(u, v uint64) float32) []float64 {
	n := int(g.NumVertices())
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	h := &distHeap{{v: src, d: 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(*distItem)
		if it.d > dist[it.v] {
			continue
		}
		for _, t := range g.Out(it.v) {
			nd := it.d + float64(w(uint64(it.v), uint64(t)))
			if nd < dist[t] {
				dist[t] = nd
				heap.Push(h, &distItem{v: t, d: nd})
			}
		}
	}
	return dist
}

// WCC returns weakly-connected-component labels: every vertex's label is
// the smallest vertex ID in its component (what min-label propagation
// converges to).
func WCC(g *csr.Graph) []uint32 {
	n := int(g.NumVertices())
	u := g.Undirected()
	label := make([]uint32, n)
	seen := make([]bool, n)
	for i := range label {
		label[i] = uint32(i)
	}
	for v := 0; v < n; v++ {
		if seen[v] {
			continue
		}
		// BFS labels the whole component with v (the smallest unseen ID).
		seen[v] = true
		queue := []uint32{uint32(v)}
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			label[x] = uint32(v)
			for _, t := range u.Out(x) {
				if !seen[t] {
					seen[t] = true
					queue = append(queue, t)
				}
			}
		}
	}
	return label
}

// BC returns single-source betweenness (Brandes' dependency accumulation
// from one source, unweighted).
func BC(g *csr.Graph, src uint32) []float64 {
	n := int(g.NumVertices())
	dist := make([]int32, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	sigma[src] = 1
	order := []uint32{src}
	for head := 0; head < len(order); head++ {
		v := order[head]
		for _, t := range g.Out(v) {
			if dist[t] == -1 {
				dist[t] = dist[v] + 1
				order = append(order, t)
			}
			if dist[t] == dist[v]+1 {
				sigma[t] += sigma[v]
			}
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		for _, t := range g.Out(v) {
			if dist[t] == dist[v]+1 && sigma[t] > 0 {
				delta[v] += sigma[v] / sigma[t] * (1 + delta[t])
			}
		}
	}
	delta[src] = 0
	return delta
}

// RWR runs Random Walk with Restart from src: the walk restarts with
// probability c each step, so next(v) = c*[v==src] + (1-c) * sum over
// in-edges u->v of prev(u)/outdeg(u), starting from all mass at src.
func RWR(g *csr.Graph, src uint32, c float64, iterations int) []float64 {
	n := int(g.NumVertices())
	prev := make([]float64, n)
	next := make([]float64, n)
	prev[src] = 1
	for it := 0; it < iterations; it++ {
		for i := range next {
			next[i] = 0
		}
		next[src] = c
		for v := 0; v < n; v++ {
			out := g.Out(uint32(v))
			if len(out) == 0 || prev[v] == 0 {
				continue
			}
			w := (1 - c) * prev[v] / float64(len(out))
			for _, t := range out {
				next[t] += w
			}
		}
		prev, next = next, prev
	}
	return prev
}

// KCore reports which vertices survive iterative peeling at threshold k
// under multigraph undirected degree: every directed edge occurrence
// contributes to both endpoints (duplicates count multiply, a self loop
// counts twice). Rounds remove vertices whose remaining degree is below k
// until none qualify. This matches the page kernels, which tally each
// adjacency entry as stored.
func KCore(g *csr.Graph, k int) []bool {
	n := int(g.NumVertices())
	rev := g.Transpose()
	alive := make([]bool, n)
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		alive[v] = true
		deg[v] = g.Degree(uint64(v)) + rev.Degree(uint64(v))
	}
	drop := func(t uint32) {
		deg[t]--
	}
	for changed := true; changed; {
		changed = false
		for v := 0; v < n; v++ {
			if alive[v] && deg[v] < k {
				alive[v] = false
				changed = true
				for _, t := range g.Out(uint32(v)) {
					drop(t)
				}
				for _, t := range rev.Out(uint32(v)) {
					drop(t)
				}
			}
		}
	}
	return alive
}
