package slottedpage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// StreamInfo carries a store's metadata without its pages, as read by
// StreamPages before the page callback starts.
type StreamInfo struct {
	Config      Config
	NumVertices uint64
	NumEdges    uint64
	NumPages    int
	RVT         []RVTEntry
	Kinds       []Kind
}

// StreamPages reads a store file page by page in constant memory: the
// header and side tables load first, then fn receives every page in pid
// order over a single reused buffer (the Page is invalid after fn returns).
// The trailing CRC is validated after the last page; a checksum failure
// returns ErrChecksum even though fn has already seen the data, so callers
// that cannot tolerate torn input should buffer their effects.
//
// This is how out-of-core tools scan stores bigger than memory; the GTS
// engine itself keeps the simulated-storage path separate.
func StreamPages(r io.Reader, fn func(info *StreamInfo, pid PageID, pg Page) error) (*StreamInfo, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	cr := &crcReader{r: br, crc: crc32.NewIEEE()}
	read := func(v any) error { return binary.Read(cr, binary.LittleEndian, v) }

	var magic [8]byte
	if _, err := io.ReadFull(cr, magic[:]); err != nil {
		return nil, fmt.Errorf("slottedpage: reading magic: %w", err)
	}
	if magic != fileMagic {
		return nil, fmt.Errorf("slottedpage: bad magic %q", magic[:])
	}
	var hdr [9]uint64
	for i := range hdr {
		if err := read(&hdr[i]); err != nil {
			return nil, fmt.Errorf("slottedpage: reading header: %w", err)
		}
	}
	info := &StreamInfo{
		Config: Config{
			PageSize: int(hdr[0]), PIDBytes: int(hdr[1]), SlotBytes: int(hdr[2]),
			VIDBytes: int(hdr[3]), OffBytes: int(hdr[4]), SizeBytes: int(hdr[5]),
		},
		NumVertices: hdr[6],
		NumEdges:    hdr[7],
		NumPages:    int(hdr[8]),
	}
	if err := info.Config.Validate(); err != nil {
		return nil, err
	}
	info.RVT = make([]RVTEntry, info.NumPages)
	for i := range info.RVT {
		if err := read(&info.RVT[i].StartVID); err != nil {
			return nil, err
		}
		if err := read(&info.RVT[i].LPSeq); err != nil {
			return nil, err
		}
	}
	kb := make([]byte, info.NumPages)
	if err := read(kb); err != nil {
		return nil, err
	}
	info.Kinds = make([]Kind, info.NumPages)
	for i, b := range kb {
		info.Kinds[i] = Kind(b)
	}
	// Skip the home index (2 x uint32 per vertex).
	if _, err := io.CopyN(io.Discard, cr, int64(info.NumVertices)*8); err != nil {
		return nil, fmt.Errorf("slottedpage: skipping home index: %w", err)
	}

	buf := make([]byte, info.Config.PageSize)
	for pid := 0; pid < info.NumPages; pid++ {
		if _, err := io.ReadFull(cr, buf); err != nil {
			return nil, fmt.Errorf("slottedpage: reading page %d: %w", pid, err)
		}
		if fn != nil {
			if err := fn(info, PageID(pid), Page{buf: buf, cfg: &info.Config}); err != nil {
				return nil, err
			}
		}
	}
	want := cr.crc.Sum32()
	var got uint32
	if err := binary.Read(br, binary.LittleEndian, &got); err != nil {
		return nil, fmt.Errorf("slottedpage: reading checksum: %w", err)
	}
	if got != want {
		return info, ErrChecksum
	}
	return info, nil
}

// StreamFile is StreamPages over a file path.
func StreamFile(path string, fn func(info *StreamInfo, pid PageID, pg Page) error) (*StreamInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return StreamPages(f, fn)
}
