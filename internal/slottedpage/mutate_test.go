package slottedpage

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

// graphsIdentical asserts two graphs are byte-identical: same pages, sums,
// side tables, counts.
func graphsIdentical(t *testing.T, got, want *Graph, label string) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("%s: %d vertices / %d edges, want %d / %d",
			label, got.NumVertices(), got.NumEdges(), want.NumVertices(), want.NumEdges())
	}
	if got.NumPages() != want.NumPages() {
		t.Fatalf("%s: %d pages, want %d", label, got.NumPages(), want.NumPages())
	}
	for pid := PageID(0); int(pid) < got.NumPages(); pid++ {
		if got.PageChecksum(pid) != want.PageChecksum(pid) {
			t.Fatalf("%s: page %d checksum mismatch", label, pid)
		}
		if !bytes.Equal(got.PageBytes(pid), want.PageBytes(pid)) {
			t.Fatalf("%s: page %d bytes differ", label, pid)
		}
		if got.Kind(pid) != want.Kind(pid) || got.RVT(pid) != want.RVT(pid) {
			t.Fatalf("%s: page %d side tables differ", label, pid)
		}
	}
	for v := uint64(0); v < got.NumVertices(); v++ {
		if got.HomeOf(v) != want.HomeOf(v) {
			t.Fatalf("%s: vertex %d home RID differs", label, v)
		}
	}
}

func TestApplyBatchMatchesRebuild(t *testing.T) {
	cfg := tinyConfig()
	base := adjSource{adj: [][]uint64{{1, 2}, {2}, {0}, {}}}
	g, err := Build(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMutable(g)

	batches := [][]EdgeOp{
		{{Src: 3, Dst: 0}, {Src: 0, Dst: 3}},
		{{Del: true, Src: 0, Dst: 1}},
		{{Src: 5, Dst: 1}, {Src: 1, Dst: 5}}, // grows the vertex space to 6
		{{Del: true, Src: 9, Dst: 9}},        // delete of an absent edge: no-op (but grows to 10)
	}
	// The oracle mirrors the batches against a plain adjacency list and
	// rebuilds from scratch after each batch.
	oracle := [][]uint64{{1, 2}, {2}, {0}, {}}
	for bi, ops := range batches {
		got, err := m.ApplyBatch(ops)
		if err != nil {
			t.Fatalf("batch %d: %v", bi, err)
		}
		grow := func(v uint64) {
			if v >= uint64(len(oracle)) {
				grown := make([][]uint64, v+1)
				copy(grown, oracle)
				oracle = grown
			}
		}
		for _, op := range ops {
			grow(op.Src)
			grow(op.Dst)
			if op.Del {
				kept := oracle[op.Src][:0]
				for _, d := range oracle[op.Src] {
					if d != op.Dst {
						kept = append(kept, d)
					}
				}
				oracle[op.Src] = kept
			} else {
				oracle[op.Src] = append(oracle[op.Src], op.Dst)
			}
		}
		want, err := Build(adjSource{adj: oracle}, cfg)
		if err != nil {
			t.Fatalf("batch %d oracle build: %v", bi, err)
		}
		graphsIdentical(t, got, want, "after batch")
		if err := got.Validate(); err != nil {
			t.Fatalf("batch %d: Validate: %v", bi, err)
		}
		if m.Snapshot() != got {
			t.Fatalf("batch %d: Snapshot is not the published successor", bi)
		}
	}
}

func TestApplyBatchAdoptsUntouchedPages(t *testing.T) {
	// A big-ish graph where a single-edge batch should leave most pages
	// byte-identical; adopted pages must share the old backing arrays.
	cfg := tinyConfig()
	adj := make([][]uint64, 256)
	for v := range adj {
		for d := 1; d <= 4; d++ {
			adj[v] = append(adj[v], uint64((v+d)%256))
		}
	}
	g, err := Build(adjSource{adj: adj}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMutable(g)
	next, err := m.ApplyBatch([]EdgeOp{{Src: 255, Dst: 0}})
	if err != nil {
		t.Fatal(err)
	}
	shared := 0
	for pid := 0; pid < next.NumPages() && pid < g.NumPages(); pid++ {
		op, np := g.PageBytes(PageID(pid)), next.PageBytes(PageID(pid))
		if len(op) > 0 && len(np) > 0 && &op[0] == &np[0] {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("single-edge batch adopted no predecessor pages")
	}
	if err := next.Validate(); err != nil {
		t.Fatal(err)
	}
	// The predecessor snapshot is untouched and still valid.
	if err := g.Validate(); err != nil {
		t.Fatalf("predecessor snapshot corrupted: %v", err)
	}
}

func TestApplyBatchFailureLeavesStateUntouched(t *testing.T) {
	cfg := tinyConfig()
	g, err := Build(adjSource{adj: [][]uint64{{1}, {0}}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMutable(g)
	before := m.Snapshot()
	huge := cfg.MaxAddressableVertices() + 10
	if _, err := m.ApplyBatch([]EdgeOp{{Src: 0, Dst: 1}, {Src: huge, Dst: 0}}); err == nil {
		t.Fatal("batch naming an unaddressable vertex did not fail")
	}
	if m.Snapshot() != before {
		t.Fatal("failed batch published a snapshot")
	}
	if m.NumEdges() != 2 {
		t.Fatalf("failed batch changed edge count to %d", m.NumEdges())
	}
	// The mirror is intact: a valid follow-up batch applies cleanly.
	next, err := m.ApplyBatch([]EdgeOp{{Src: 1, Dst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Build(adjSource{adj: [][]uint64{{1}, {0, 1}}}, cfg)
	graphsIdentical(t, next, want, "after failed batch")
}

func TestConcurrentSnapshotsDuringMutation(t *testing.T) {
	cfg := tinyConfig()
	adj := make([][]uint64, 64)
	for v := range adj {
		adj[v] = []uint64{uint64((v + 1) % 64)}
	}
	g, err := Build(adjSource{adj: adj}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMutable(g)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := m.Snapshot()
				if err := s.Validate(); err != nil {
					t.Errorf("snapshot invalid during mutation: %v", err)
					return
				}
				var n uint64
				s.NeighborsOf(3, func(uint64) { n++ })
				_ = n
			}
		}()
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 30; i++ {
		op := EdgeOp{Src: uint64(rng.Intn(64)), Dst: uint64(rng.Intn(64)), Del: rng.Intn(3) == 0}
		if _, err := m.ApplyBatch([]EdgeOp{op}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
