package slottedpage

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
)

// EdgeOp is one directed-edge mutation against a mutable graph: an insert
// (Del false) or a delete (Del true) of Src -> Dst. Deletes remove every
// occurrence of the edge (the store permits parallel edges); deleting an
// absent edge is a no-op. Inserts may name vertices beyond the current
// vertex count — the vertex space grows to cover them.
type EdgeOp struct {
	Del bool
	Src uint64
	Dst uint64
}

// Mutable wraps an immutable slotted-page Graph with a batched mutation
// path. Readers take latch-free snapshots (an atomic pointer load) and run
// against a fully immutable Graph; ApplyBatch builds the successor state
// off to the side and publishes it with a single atomic swap, adopting
// every page whose bytes did not change under a per-page latch — the
// blink-tree discipline: readers never block, writers never tear a page.
//
// The successor is produced by re-packing the mutated adjacency mirror
// through Build, so a mutated graph is byte-identical to a from-scratch
// build over the same logical edges — pages, checksums, RVT, home RIDs,
// everything. That equivalence is what makes WAL recovery exact: replaying
// a committed batch after a crash lands on the same bytes the crashed
// process would have published.
//
// Writers are serialized (one ApplyBatch at a time); reads are safe
// concurrently with a write.
type Mutable struct {
	mu      sync.Mutex   // serializes writers
	latches []sync.Mutex // one per page of the current graph, for swap adoption
	cur     atomic.Pointer[Graph]
	adj     [][]uint64 // adjacency mirror of the current graph
	edges   uint64
}

// mirrorSource adapts an adjacency mirror to the Build Source contract.
type mirrorSource struct {
	adj   [][]uint64
	edges uint64
}

func (s mirrorSource) NumVertices() uint64 { return uint64(len(s.adj)) }
func (s mirrorSource) NumEdges() uint64    { return s.edges }
func (s mirrorSource) Degree(v uint64) int { return len(s.adj[v]) }
func (s mirrorSource) Neighbors(v uint64, fn func(dst uint64)) {
	for _, d := range s.adj[v] {
		fn(d)
	}
}

// NewMutable wraps g for mutation, decoding its adjacency into the host
// mirror the mutation path rebuilds from. The wrapped Graph must not be
// mutated elsewhere; its page buffers may be adopted (shared) by successor
// snapshots.
func NewMutable(g *Graph) *Mutable {
	adj := make([][]uint64, g.NumVertices())
	for v := uint64(0); v < g.NumVertices(); v++ {
		deg := g.DegreeOf(v)
		if deg > 0 {
			row := make([]uint64, 0, deg)
			g.NeighborsOf(v, func(dst uint64) { row = append(row, dst) })
			adj[v] = row
		}
	}
	m := &Mutable{adj: adj, edges: g.NumEdges(), latches: make([]sync.Mutex, g.NumPages())}
	m.cur.Store(g)
	return m
}

// Snapshot returns the current immutable graph. The snapshot stays valid
// (and internally consistent) forever; later batches publish new snapshots
// without disturbing it.
func (m *Mutable) Snapshot() *Graph { return m.cur.Load() }

// NumEdges returns the current logical edge count.
func (m *Mutable) NumEdges() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.edges
}

// ApplyBatch applies ops atomically: either the whole batch commits and the
// returned Graph is the published successor snapshot, or no observable
// state changes. The successor shares the byte buffers of every page the
// batch did not disturb (adopted under that page's latch), so small batches
// over big graphs copy only the pages they touch.
func (m *Mutable) ApplyBatch(ops []EdgeOp) (*Graph, error) {
	m.mu.Lock()
	defer m.mu.Unlock()

	old := m.cur.Load()
	cfg := old.Config()

	// Copy-on-write over the mirror: rows are copied the first time the
	// batch touches them, so an error mid-batch leaves m.adj untouched.
	adj := make([][]uint64, len(m.adj))
	copy(adj, m.adj)
	touched := make(map[uint64]bool)
	edges := m.edges
	grow := func(v uint64) error {
		if v < uint64(len(adj)) {
			return nil
		}
		if v >= cfg.MaxAddressableVertices() {
			return fmt.Errorf("slottedpage: vertex %d exceeds addressable capacity %d", v, cfg.MaxAddressableVertices())
		}
		next := make([][]uint64, v+1)
		copy(next, adj)
		adj = next
		return nil
	}
	for _, op := range ops {
		if err := grow(op.Src); err != nil {
			return nil, err
		}
		if err := grow(op.Dst); err != nil {
			return nil, err
		}
		if !touched[op.Src] {
			adj[op.Src] = append([]uint64(nil), adj[op.Src]...)
			touched[op.Src] = true
		}
		if op.Del {
			row := adj[op.Src]
			kept := row[:0]
			for _, d := range row {
				if d == op.Dst {
					edges--
				} else {
					kept = append(kept, d)
				}
			}
			adj[op.Src] = kept
		} else {
			adj[op.Src] = append(adj[op.Src], op.Dst)
			edges++
		}
	}

	next, err := Build(mirrorSource{adj: adj, edges: edges}, cfg)
	if err != nil {
		return nil, err
	}

	// Adopt unchanged pages from the predecessor under their latches:
	// where the rebuilt page is byte-equal to the old one, the successor
	// points at the old buffer, so readers of either snapshot share one
	// physical page and the swap never copies untouched topology.
	for pid := 0; pid < len(next.pages) && pid < len(old.pages); pid++ {
		m.latches[pid].Lock()
		if next.sums[pid] == old.sums[pid] && bytes.Equal(next.pages[pid], old.pages[pid]) {
			next.pages[pid] = old.pages[pid]
		}
		m.latches[pid].Unlock()
	}
	if len(next.pages) > len(m.latches) {
		grown := make([]sync.Mutex, len(next.pages))
		m.latches = grown
	}

	m.adj = adj
	m.edges = edges
	m.cur.Store(next)
	return next, nil
}
