// Package slottedpage implements the slotted page graph format that GTS
// streams to GPUs (paper §2), including the generalized (p,q) physical-ID
// addressing for trillion-scale graphs (paper §6.1).
//
// A graph's topology is a sequence of fixed-size pages. Records (adjacency
// lists) grow forward from the start of a page; slots grow backward from the
// end. A slot holds a vertex's logical ID (VID) and the byte offset of its
// record (OFF). A record holds the adjacency-list length (ADJLIST_SZ)
// followed by the list itself, whose entries are *physical* record IDs: a
// page ID of p bytes (ADJ_PID) and a slot number of q bytes (ADJ_OFF).
//
// Low-degree vertices share a Small Page (SP). A vertex whose adjacency list
// cannot fit in one page spills into a run of Large Pages (LPs), each holding
// a single slot. The RVT side table maps a physical ID back to a logical VID
// in O(1): VID = RVT[ADJ_PID].StartVID + ADJ_OFF (paper Appendix A).
package slottedpage

import "fmt"

// Config fixes the byte-level layout of a slotted page store. The paper's
// experiments use (p=2,q=2) with 1 MB pages for graphs up to RMAT29 and
// (p=3,q=3) with 64 MB pages for RMAT30-32.
type Config struct {
	// PageSize is the fixed size of every page in bytes.
	PageSize int
	// PIDBytes is p, the width of a page ID in an adjacency entry.
	PIDBytes int
	// SlotBytes is q, the width of a slot number in an adjacency entry.
	SlotBytes int
	// VIDBytes is the width of the logical vertex ID stored in a slot.
	// The paper's generalized format uses 6 bytes.
	VIDBytes int
	// OffBytes is the width of the record-offset field in a slot.
	OffBytes int
	// SizeBytes is the width of the ADJLIST_SZ field in a record.
	SizeBytes int
}

// headerSize is the per-page header: slot count (4 bytes), page kind
// (1 byte), reserved (3 bytes).
const headerSize = 8

// maxPageSize caps PageSize at 256 MB — four times the paper's largest
// (64 MB) configuration. The bound keeps a hostile store header from
// demanding arbitrarily large page allocations during decode.
const maxPageSize = 1 << 28

// Config presets matching the paper's Table 3 usage, with page sizes scaled
// so that the scaled-down datasets produce comparable page counts.
func configWith(p, q, pageSize int) Config {
	return Config{PageSize: pageSize, PIDBytes: p, SlotBytes: q, VIDBytes: 6, OffBytes: 4, SizeBytes: 4}
}

// Config22 is the (p=2,q=2) preset the paper uses for RMAT27-29 and the real
// graphs (1 MB pages).
func Config22() Config { return configWith(2, 2, 1<<20) }

// Config33 is the (p=3,q=3) preset the paper uses for RMAT30-32 (64 MB
// pages, the Hadoop-compatible block size).
func Config33() Config { return configWith(3, 3, 64<<20) }

// Config24 and Config42 are the other 6-byte physical-ID configurations from
// the paper's Table 2.
func Config24() Config { return configWith(2, 4, 1<<20) }

// Config42 is the (p=4,q=2) configuration from the paper's Table 2.
func Config42() Config { return configWith(4, 2, 1<<20) }

// ScaledConfig returns a (p,q) config with a custom page size, used by the
// experiment harness to keep page counts realistic on scaled-down graphs.
func ScaledConfig(p, q, pageSize int) Config { return configWith(p, q, pageSize) }

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.PageSize < headerSize+64:
		return fmt.Errorf("slottedpage: page size %d too small", c.PageSize)
	case c.PageSize > maxPageSize:
		return fmt.Errorf("slottedpage: page size %d exceeds limit %d", c.PageSize, maxPageSize)
	case c.PIDBytes < 1 || c.PIDBytes > 8:
		return fmt.Errorf("slottedpage: p = %d out of range [1,8]", c.PIDBytes)
	case c.SlotBytes < 1 || c.SlotBytes > 8:
		return fmt.Errorf("slottedpage: q = %d out of range [1,8]", c.SlotBytes)
	case c.VIDBytes < 1 || c.VIDBytes > 8:
		return fmt.Errorf("slottedpage: VID width %d out of range [1,8]", c.VIDBytes)
	case c.OffBytes < 2 || c.OffBytes > 8:
		return fmt.Errorf("slottedpage: OFF width %d out of range [2,8]", c.OffBytes)
	case c.SizeBytes < 2 || c.SizeBytes > 8:
		return fmt.Errorf("slottedpage: ADJLIST_SZ width %d out of range [2,8]", c.SizeBytes)
	}
	if uint64(c.PageSize) > maxUint(c.OffBytes) {
		return fmt.Errorf("slottedpage: page size %d not addressable by %d-byte OFF", c.PageSize, c.OffBytes)
	}
	return nil
}

// RIDBytes is the width of one adjacency entry (a physical record ID).
func (c Config) RIDBytes() int { return c.PIDBytes + c.SlotBytes }

// SlotSize is the width of one slot (VID + OFF).
func (c Config) SlotSize() int { return c.VIDBytes + c.OffBytes }

// MaxPages is the number of distinct pages addressable by a p-byte page ID.
// At p=8 the true count (2^64) is not representable; the maximum uint64
// stands in, which is unreachable in practice anyway.
func (c Config) MaxPages() uint64 {
	if c.PIDBytes >= 8 {
		return ^uint64(0)
	}
	return maxUint(c.PIDBytes) + 1
}

// MaxSlotNumber is the number of distinct slots addressable by a q-byte slot
// number (saturating at the maximum uint64 for q=8, like MaxPages).
func (c Config) MaxSlotNumber() uint64 {
	if c.SlotBytes >= 8 {
		return ^uint64(0)
	}
	return maxUint(c.SlotBytes) + 1
}

// MaxSlotsPerPage is how many slots physically fit in a page of this size,
// additionally capped by the q-byte slot-number space.
func (c Config) MaxSlotsPerPage() int {
	fit := (c.PageSize - headerSize) / (c.SlotSize() + c.SizeBytes)
	if cap := c.MaxSlotNumber(); uint64(fit) > cap {
		return int(cap)
	}
	return fit
}

// MaxTheoreticalPageSize reproduces the paper's Table 2 derivation: the
// largest useful page size for a configuration, assuming each slot carries
// at minimum its slot (VID+OFF), an ADJLIST_SZ field, and one adjacency
// entry — 6+4+4+6 = 20 bytes per vertex under the paper's widths.
func (c Config) MaxTheoreticalPageSize() uint64 {
	perVertex := uint64(c.SlotSize() + c.SizeBytes + c.RIDBytes())
	return c.MaxSlotNumber() * perVertex
}

// MaxAddressableVertices is the theoretical vertex capacity of the whole
// store: every page filled with the maximum slot count.
func (c Config) MaxAddressableVertices() uint64 {
	return c.MaxPages() * c.MaxSlotNumber()
}

// capacity is the usable byte space of a page (excluding the header).
func (c Config) capacity() int { return c.PageSize - headerSize }

// recordSize is the byte size of a record holding deg adjacency entries.
func (c Config) recordSize(deg int) int { return c.SizeBytes + deg*c.RIDBytes() }

// maxSPDegree is the largest degree that still fits in a single (empty)
// small page alongside its slot.
func (c Config) maxSPDegree() int {
	return (c.capacity() - c.SlotSize() - c.SizeBytes) / c.RIDBytes()
}

// lpEntriesPerPage is how many adjacency entries one large page holds.
func (c Config) lpEntriesPerPage() int { return c.maxSPDegree() }

func maxUint(width int) uint64 {
	if width >= 8 {
		return ^uint64(0)
	}
	return (uint64(1) << (8 * width)) - 1
}
