package slottedpage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"
)

// File persistence for a slotted-page graph. The layout is a fixed header
// (magic, version, config, counts), the RVT and per-vertex home index, the
// raw pages, and a trailing CRC-32 over everything before it.

var fileMagic = [8]byte{'G', 'T', 'S', 'P', 'A', 'G', 'E', '1'}

// ErrChecksum reports that a store file failed CRC validation.
var ErrChecksum = errors.New("slottedpage: checksum mismatch")

type crcWriter struct {
	w   io.Writer
	crc hash.Hash32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	cw.crc.Write(p)
	return cw.w.Write(p)
}

type crcReader struct {
	r   io.Reader
	crc hash.Hash32
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc.Write(p[:n])
	return n, err
}

// WriteTo serializes the graph. It returns the byte count written.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	cw := &crcWriter{w: bw, crc: crc32.NewIEEE()}
	write := func(v any) error { return binary.Write(cw, binary.LittleEndian, v) }

	if _, err := cw.Write(fileMagic[:]); err != nil {
		return 0, err
	}
	hdr := []uint64{
		uint64(g.cfg.PageSize), uint64(g.cfg.PIDBytes), uint64(g.cfg.SlotBytes),
		uint64(g.cfg.VIDBytes), uint64(g.cfg.OffBytes), uint64(g.cfg.SizeBytes),
		g.numVertices, g.numEdges, uint64(len(g.pages)),
	}
	for _, h := range hdr {
		if err := write(h); err != nil {
			return 0, err
		}
	}
	for _, e := range g.rvt {
		if err := write(e.StartVID); err != nil {
			return 0, err
		}
		if err := write(e.LPSeq); err != nil {
			return 0, err
		}
	}
	if err := write(kindBytes(g.kinds)); err != nil {
		return 0, err
	}
	if err := write(g.homePID); err != nil {
		return 0, err
	}
	if err := write(g.homeSlot); err != nil {
		return 0, err
	}
	for _, pg := range g.pages {
		if _, err := cw.Write(pg); err != nil {
			return 0, err
		}
	}
	sum := cw.crc.Sum32()
	if err := binary.Write(bw, binary.LittleEndian, sum); err != nil {
		return 0, err
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	return g.encodedSize(), nil
}

func kindBytes(ks []Kind) []byte {
	b := make([]byte, len(ks))
	for i, k := range ks {
		b[i] = byte(k)
	}
	return b
}

// encodedSize reports the serialized size in bytes.
func (g *Graph) encodedSize() int64 {
	n := int64(8)                  // magic
	n += 9 * 8                     // header words
	n += int64(len(g.rvt)) * 12    // RVT entries
	n += int64(len(g.kinds))       // kinds
	n += int64(len(g.homePID)) * 8 // home index (two uint32 arrays)
	n += int64(len(g.pages)) * int64(g.cfg.PageSize)
	n += 4 // CRC
	return n
}

// readChunk is the allocation granularity for header-declared arrays. A
// hostile header can declare any element count; allocating per chunk as
// bytes actually arrive means a truncated or lying stream fails with a
// read error after at most one chunk of waste, never an OOM.
const readChunk = 1 << 16

// readUint32s reads count little-endian uint32s with chunked allocation.
func readUint32s(r io.Reader, count uint64) ([]uint32, error) {
	out := make([]uint32, 0, min(count, readChunk))
	for count > 0 {
		n := min(count, readChunk)
		buf := make([]uint32, n)
		if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
			return nil, err
		}
		out = append(out, buf...)
		count -= n
	}
	return out, nil
}

// Read deserializes a graph written by WriteTo, validating its whole-file
// checksum, per-page checksums, and full structural consistency
// (Graph.Validate). It is safe on arbitrary input: malformed, truncated,
// or hostile streams produce an error, never a panic or an unbounded
// allocation.
func Read(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	cr := &crcReader{r: br, crc: crc32.NewIEEE()}
	read := func(v any) error { return binary.Read(cr, binary.LittleEndian, v) }

	var magic [8]byte
	if _, err := io.ReadFull(cr, magic[:]); err != nil {
		return nil, fmt.Errorf("slottedpage: reading magic: %w", err)
	}
	if magic != fileMagic {
		return nil, fmt.Errorf("slottedpage: bad magic %q", magic[:])
	}
	var hdr [9]uint64
	for i := range hdr {
		if err := read(&hdr[i]); err != nil {
			return nil, fmt.Errorf("slottedpage: reading header: %w", err)
		}
	}
	for _, w := range hdr[:6] {
		if w > uint64(maxPageSize) {
			return nil, fmt.Errorf("slottedpage: header field %d out of range", w)
		}
	}
	g := &Graph{
		cfg: Config{
			PageSize: int(hdr[0]), PIDBytes: int(hdr[1]), SlotBytes: int(hdr[2]),
			VIDBytes: int(hdr[3]), OffBytes: int(hdr[4]), SizeBytes: int(hdr[5]),
		},
		numVertices: hdr[6],
		numEdges:    hdr[7],
	}
	if err := g.cfg.Validate(); err != nil {
		return nil, err
	}
	numPages := hdr[8]
	if numPages > g.cfg.MaxPages() {
		return nil, fmt.Errorf("slottedpage: %d pages exceed p=%d capacity %d",
			numPages, g.cfg.PIDBytes, g.cfg.MaxPages())
	}
	g.rvt = make([]RVTEntry, 0, min(numPages, readChunk))
	for i := uint64(0); i < numPages; i++ {
		var e RVTEntry
		if err := read(&e.StartVID); err != nil {
			return nil, fmt.Errorf("slottedpage: reading RVT: %w", err)
		}
		if err := read(&e.LPSeq); err != nil {
			return nil, fmt.Errorf("slottedpage: reading RVT: %w", err)
		}
		g.rvt = append(g.rvt, e)
	}
	g.kinds = make([]Kind, 0, min(numPages, readChunk))
	for rest := numPages; rest > 0; {
		kb := make([]byte, min(rest, readChunk))
		if err := read(kb); err != nil {
			return nil, fmt.Errorf("slottedpage: reading kinds: %w", err)
		}
		for _, b := range kb {
			if k := Kind(b); k != SmallPage && k != LargePage {
				return nil, fmt.Errorf("%w: unknown page kind %d", ErrInvalidPage, b)
			}
			g.kinds = append(g.kinds, Kind(b))
		}
		rest -= uint64(len(kb))
	}
	for i, k := range g.kinds {
		if k == SmallPage {
			g.spIDs = append(g.spIDs, PageID(i))
		} else {
			g.lpIDs = append(g.lpIDs, PageID(i))
		}
	}
	var err error
	if g.homePID, err = readUint32s(cr, g.numVertices); err != nil {
		return nil, fmt.Errorf("slottedpage: reading home PIDs: %w", err)
	}
	if g.homeSlot, err = readUint32s(cr, g.numVertices); err != nil {
		return nil, fmt.Errorf("slottedpage: reading home slots: %w", err)
	}
	g.pages = make([][]byte, 0, min(numPages, readChunk))
	for i := uint64(0); i < numPages; i++ {
		pg := make([]byte, g.cfg.PageSize)
		if _, err := io.ReadFull(cr, pg); err != nil {
			return nil, fmt.Errorf("slottedpage: reading page %d: %w", i, err)
		}
		g.pages = append(g.pages, pg)
	}
	want := cr.crc.Sum32()
	var got uint32
	if err := binary.Read(br, binary.LittleEndian, &got); err != nil {
		return nil, fmt.Errorf("slottedpage: reading checksum: %w", err)
	}
	if got != want {
		return nil, ErrChecksum
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	g.computeChecksums()
	return g, nil
}

// WriteFile serializes the graph to path, replacing any existing file.
func (g *Graph) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := g.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile deserializes a graph from path.
func ReadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
