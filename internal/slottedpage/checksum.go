package slottedpage

import (
	"errors"
	"fmt"
	"hash/crc32"
)

// Page-level integrity. The store file's trailing CRC covers the whole
// serialization; per-page checksums additionally let the engine verify each
// page as it comes off storage (and detect in-flight corruption injected by
// the fault layer) without re-reading the file.

// ErrPageChecksum reports that one page's bytes fail CRC validation.
var ErrPageChecksum = errors.New("slottedpage: page checksum mismatch")

// ErrInvalidPage reports that a page's structure is malformed: out-of-range
// slot count, record offsets, or adjacency sizes.
var ErrInvalidPage = errors.New("slottedpage: invalid page structure")

// PageChecksum is the CRC-32 (IEEE) of a page's raw bytes.
func PageChecksum(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

// PageChecksum returns the recorded checksum of page pid.
func (g *Graph) PageChecksum(pid PageID) uint32 { return g.sums[pid] }

// VerifyPageBytes checks b against page pid's recorded checksum — the
// engine's defense against pages damaged between storage and GPU.
func (g *Graph) VerifyPageBytes(pid PageID, b []byte) error {
	if got, want := PageChecksum(b), g.sums[pid]; got != want {
		return fmt.Errorf("%w: page %d has %#08x, want %#08x", ErrPageChecksum, pid, got, want)
	}
	return nil
}

// computeChecksums (re)fills the per-page checksum table from page bytes.
func (g *Graph) computeChecksums() {
	g.sums = make([]uint32, len(g.pages))
	for i, pg := range g.pages {
		g.sums[i] = PageChecksum(pg)
	}
}

// ValidatePage structurally validates raw page bytes under cfg without
// panicking or over-reading: header sanity, slot area within bounds, every
// record (offset, size, adjacency list) inside the free space between
// header and slot area. A page that passes can be walked with
// Page.Slot/Page.Adj/AdjView.At safely. All arithmetic is done in int64 so
// hostile field values cannot overflow int on 32-bit builds.
func ValidatePage(buf []byte, cfg *Config) error {
	if len(buf) != cfg.PageSize {
		return fmt.Errorf("%w: %d bytes, config says %d", ErrInvalidPage, len(buf), cfg.PageSize)
	}
	if k := Kind(buf[4]); k != SmallPage && k != LargePage {
		return fmt.Errorf("%w: unknown page kind %d", ErrInvalidPage, buf[4])
	}
	pg := Page{buf: buf, cfg: cfg}
	slots := int64(uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24)
	if pg.Kind() == LargePage && slots != 1 {
		return fmt.Errorf("%w: large page with %d slots", ErrInvalidPage, slots)
	}
	slotArea := int64(cfg.PageSize) - slots*int64(cfg.SlotSize())
	if slotArea < headerSize {
		return fmt.Errorf("%w: %d slots overrun the page", ErrInvalidPage, slots)
	}
	for i := int64(0); i < slots; i++ {
		_, off := pg.Slot(int(i))
		o := int64(off)
		if o < headerSize || o+int64(cfg.SizeBytes) > slotArea {
			return fmt.Errorf("%w: slot %d record offset %d out of bounds", ErrInvalidPage, i, off)
		}
		n := int64(getUint(buf[o:], cfg.SizeBytes))
		if end := o + int64(cfg.SizeBytes) + n*int64(cfg.RIDBytes()); end > slotArea {
			return fmt.Errorf("%w: slot %d adjacency list (%d entries) overruns record area", ErrInvalidPage, i, n)
		}
	}
	return nil
}

// Validate cross-checks the whole graph: every page structurally valid and
// consistent with its side tables, every home RID and every adjacency
// entry pointing at a real record, every slot VID in range. A graph that
// passes can be traversed (NeighborsOf, engine kernels) without panics no
// matter where its bytes came from. Read calls this, so a decoded store is
// safe by construction.
func (g *Graph) Validate() error {
	n := len(g.pages)
	if len(g.rvt) != n || len(g.kinds) != n {
		return fmt.Errorf("%w: %d pages but %d RVT entries, %d kinds", ErrInvalidPage, n, len(g.rvt), len(g.kinds))
	}
	if uint64(len(g.homePID)) != g.numVertices || uint64(len(g.homeSlot)) != g.numVertices {
		return fmt.Errorf("%w: %d vertices but %d/%d home entries",
			ErrInvalidPage, g.numVertices, len(g.homePID), len(g.homeSlot))
	}
	slotCount := make([]uint64, n)
	for pid, buf := range g.pages {
		if err := ValidatePage(buf, &g.cfg); err != nil {
			return fmt.Errorf("page %d: %w", pid, err)
		}
		pg := Page{buf: buf, cfg: &g.cfg}
		if pg.Kind() != g.kinds[pid] {
			return fmt.Errorf("%w: page %d kind byte %v disagrees with kind table %v",
				ErrInvalidPage, pid, pg.Kind(), g.kinds[pid])
		}
		if lp := g.rvt[pid].LPSeq >= 0; lp != (g.kinds[pid] == LargePage) {
			return fmt.Errorf("%w: page %d LPSeq %d disagrees with kind %v",
				ErrInvalidPage, pid, g.rvt[pid].LPSeq, g.kinds[pid])
		}
		slotCount[pid] = uint64(pg.NumSlots())
		// Every slot's VID must match RVT translation and stay in range.
		start := g.rvt[pid].StartVID
		for s := 0; s < pg.NumSlots(); s++ {
			vid, _ := pg.Slot(s)
			want := start
			if g.kinds[pid] == SmallPage {
				want = start + uint64(s)
			}
			if vid != want || vid >= g.numVertices {
				return fmt.Errorf("%w: page %d slot %d holds VID %d, want %d (< %d vertices)",
					ErrInvalidPage, pid, s, vid, want, g.numVertices)
			}
		}
	}
	for v, pid := range g.homePID {
		if uint64(pid) >= uint64(n) || uint64(g.homeSlot[v]) >= slotCount[pid] {
			return fmt.Errorf("%w: vertex %d home RID (%d,%d) out of range", ErrInvalidPage, v, pid, g.homeSlot[v])
		}
	}
	// Every adjacency entry must resolve to a real record.
	for pid := range g.pages {
		pg := g.Page(PageID(pid))
		for s := 0; s < pg.NumSlots(); s++ {
			adj := pg.Adj(s)
			for i := 0; i < adj.Len(); i++ {
				r := adj.At(i)
				if uint64(r.PID) >= uint64(n) || uint64(r.Slot) >= slotCount[r.PID] {
					return fmt.Errorf("%w: page %d slot %d entry %d targets RID (%d,%d) out of range",
						ErrInvalidPage, pid, s, i, r.PID, r.Slot)
				}
			}
		}
	}
	return nil
}
