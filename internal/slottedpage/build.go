package slottedpage

import "fmt"

// Source supplies a graph's topology in vertex-ID order. Vertex IDs must be
// dense in [0, NumVertices).
type Source interface {
	NumVertices() uint64
	NumEdges() uint64
	// Degree returns the out-degree of v.
	Degree(v uint64) int
	// Neighbors calls fn for every out-neighbor of v, in adjacency order.
	Neighbors(v uint64, fn func(dst uint64))
}

// RVTEntry is one row of the RID-to-VID mapping table (paper Appendix A):
// the first logical vertex ID stored in a page, and for large pages the
// page's position in its vertex's LP run (LPSeq = -1 marks a small page).
type RVTEntry struct {
	StartVID uint64
	LPSeq    int32
}

// Graph is an immutable slotted-page topology store plus its side tables.
type Graph struct {
	cfg         Config
	numVertices uint64
	numEdges    uint64
	pages       [][]byte
	sums        []uint32 // per-page CRC-32, parallel to pages
	rvt         []RVTEntry
	kinds       []Kind
	spIDs       []PageID
	lpIDs       []PageID
	homePID     []uint32
	homeSlot    []uint32
}

// Build packs src into slotted pages under cfg. Vertices are placed in VID
// order so that VIDs are consecutive within every small page — the property
// the RVT's O(1) physical-to-logical translation depends on.
func Build(src Source, cfg Config) (*Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	v := src.NumVertices()
	if v > cfg.MaxAddressableVertices() {
		return nil, fmt.Errorf("slottedpage: %d vertices exceed capacity %d of (p=%d,q=%d)",
			v, cfg.MaxAddressableVertices(), cfg.PIDBytes, cfg.SlotBytes)
	}
	g := &Graph{
		cfg:         cfg,
		numVertices: v,
		numEdges:    src.NumEdges(),
		homePID:     make([]uint32, v),
		homeSlot:    make([]uint32, v),
	}

	// Pass 1: compute page boundaries and per-vertex home RIDs from degrees.
	type pageMeta struct {
		kind     Kind
		startVID uint64
		slots    int // for SP: vertex count; for LP: always 1
		lpSeq    int32
		lpDeg    int // for LP: adjacency entries stored in this page
	}
	var metas []pageMeta
	maxSP := cfg.maxSPDegree()
	perLP := cfg.lpEntriesPerPage()
	slotSz, ridSz := cfg.SlotSize(), cfg.RIDBytes()

	curOpen := false
	var cur pageMeta
	curUsed := 0
	closeCur := func() {
		if curOpen {
			metas = append(metas, cur)
			curOpen = false
		}
	}
	for vid := uint64(0); vid < v; vid++ {
		d := src.Degree(vid)
		if d > maxSP {
			// Large vertex: close the open SP (VIDs must stay consecutive
			// within a page) and emit a run of LPs.
			closeCur()
			g.homePID[vid] = uint32(len(metas))
			g.homeSlot[vid] = 0
			for seq, rest := int32(0), d; rest > 0; seq, rest = seq+1, rest-perLP {
				n := rest
				if n > perLP {
					n = perLP
				}
				metas = append(metas, pageMeta{kind: LargePage, startVID: vid, slots: 1, lpSeq: seq, lpDeg: n})
			}
			continue
		}
		need := cfg.recordSize(d) + slotSz
		if !curOpen || curUsed+need > cfg.PageSize || uint64(cur.slots) >= cfg.MaxSlotNumber() {
			closeCur()
			cur = pageMeta{kind: SmallPage, startVID: vid, lpSeq: -1}
			curUsed = headerSize
			curOpen = true
		}
		g.homePID[vid] = uint32(len(metas))
		g.homeSlot[vid] = uint32(cur.slots)
		cur.slots++
		curUsed += need
		_ = ridSz
	}
	closeCur()

	if uint64(len(metas)) > cfg.MaxPages() {
		return nil, fmt.Errorf("slottedpage: graph needs %d pages, (p=%d) addresses only %d",
			len(metas), cfg.PIDBytes, cfg.MaxPages())
	}

	// Pass 2: materialize pages, translating neighbor VIDs to physical IDs.
	g.pages = make([][]byte, len(metas))
	g.rvt = make([]RVTEntry, len(metas))
	g.kinds = make([]Kind, len(metas))
	writeEntries := func(entries []byte, vid uint64, skip, take int) {
		i, written := 0, 0
		src.Neighbors(vid, func(dst uint64) {
			if i >= skip && written < take {
				p := written * ridSz
				putUint(entries[p:], cfg.PIDBytes, uint64(g.homePID[dst]))
				putUint(entries[p+cfg.PIDBytes:], cfg.SlotBytes, uint64(g.homeSlot[dst]))
				written++
			}
			i++
		})
		if written != take {
			panic(fmt.Sprintf("slottedpage: vertex %d yielded %d neighbors, expected %d", vid, written, take))
		}
	}
	for pid, m := range metas {
		g.rvt[pid] = RVTEntry{StartVID: m.startVID, LPSeq: m.lpSeq}
		g.kinds[pid] = m.kind
		w := newPageWriter(&g.cfg, m.kind)
		if m.kind == LargePage {
			_, entries := w.addVertex(m.startVID, m.lpDeg)
			writeEntries(entries, m.startVID, int(m.lpSeq)*perLP, m.lpDeg)
			g.lpIDs = append(g.lpIDs, PageID(pid))
		} else {
			for s := 0; s < m.slots; s++ {
				vid := m.startVID + uint64(s)
				d := src.Degree(vid)
				_, entries := w.addVertex(vid, d)
				writeEntries(entries, vid, 0, d)
			}
			g.spIDs = append(g.spIDs, PageID(pid))
		}
		g.pages[pid] = w.finish()
	}
	g.computeChecksums()
	return g, nil
}

// Config returns the layout configuration the graph was built with.
func (g *Graph) Config() Config { return g.cfg }

// NumVertices reports the vertex count.
func (g *Graph) NumVertices() uint64 { return g.numVertices }

// NumEdges reports the edge count.
func (g *Graph) NumEdges() uint64 { return g.numEdges }

// NumPages reports the total page count (small + large).
func (g *Graph) NumPages() int { return len(g.pages) }

// NumSP reports the small-page count (paper Table 3's #SP).
func (g *Graph) NumSP() int { return len(g.spIDs) }

// NumLP reports the large-page count (paper Table 3's #LP).
func (g *Graph) NumLP() int { return len(g.lpIDs) }

// SPIDs returns the small-page IDs in order. The slice must not be modified.
func (g *Graph) SPIDs() []PageID { return g.spIDs }

// LPIDs returns the large-page IDs in order. The slice must not be modified.
func (g *Graph) LPIDs() []PageID { return g.lpIDs }

// TopologyBytes is the total size of all pages — what GTS streams.
func (g *Graph) TopologyBytes() int64 {
	return int64(len(g.pages)) * int64(g.cfg.PageSize)
}

// Page returns a read-only view of page pid.
func (g *Graph) Page(pid PageID) Page { return Page{buf: g.pages[pid], cfg: &g.cfg} }

// PageBytes returns the raw bytes of page pid. The slice must not be modified.
func (g *Graph) PageBytes(pid PageID) []byte { return g.pages[pid] }

// Kind reports whether page pid is a small or large page.
func (g *Graph) Kind(pid PageID) Kind { return g.kinds[pid] }

// RVT returns the RID-to-VID mapping entry for page pid.
func (g *Graph) RVT(pid PageID) RVTEntry { return g.rvt[pid] }

// VIDOf translates a physical record ID to a logical vertex ID via the RVT:
// StartVID + slot. For large pages the slot is always 0, so this yields the
// owning vertex.
func (g *Graph) VIDOf(r RID) uint64 { return g.rvt[r.PID].StartVID + uint64(r.Slot) }

// HomeOf returns the physical record ID of vertex v (for a large vertex,
// its first LP).
func (g *Graph) HomeOf(v uint64) RID {
	return RID{PID: PageID(g.homePID[v]), Slot: g.homeSlot[v]}
}

// NeighborsOf decodes vertex v's adjacency list back out of the page bytes,
// calling fn with each neighbor's logical VID. For a large vertex this walks
// the whole LP run. It is the inverse of Build and is used by the
// verification layer; engines stream pages instead.
func (g *Graph) NeighborsOf(v uint64, fn func(dst uint64)) {
	home := g.HomeOf(v)
	if g.kinds[home.PID] == SmallPage {
		pg := g.Page(home.PID)
		adj := pg.Adj(int(home.Slot))
		for i := 0; i < adj.Len(); i++ {
			fn(g.VIDOf(adj.At(i)))
		}
		return
	}
	for pid := home.PID; int(pid) < len(g.pages) && g.kinds[pid] == LargePage && g.rvt[pid].StartVID == v; pid++ {
		adj := g.Page(pid).Adj(0)
		for i := 0; i < adj.Len(); i++ {
			fn(g.VIDOf(adj.At(i)))
		}
	}
}

// DegreeOf reports vertex v's out-degree by summing its records' ADJLIST_SZ
// fields.
func (g *Graph) DegreeOf(v uint64) int {
	d := 0
	g.NeighborsOf(v, func(uint64) { d++ })
	return d
}

// VertexRange reports the half-open VID interval [start, start+count) whose
// records live in page pid. For a large page, count is 1.
func (g *Graph) VertexRange(pid PageID) (start, count uint64) {
	start = g.rvt[pid].StartVID
	if g.kinds[pid] == LargePage {
		return start, 1
	}
	return start, uint64(g.Page(pid).NumSlots())
}
