package slottedpage

import "fmt"

// Kind distinguishes small pages (many vertices) from large pages (one
// vertex's adjacency spilled across several pages).
type Kind uint8

// Page kinds.
const (
	SmallPage Kind = 0
	LargePage Kind = 1
)

// String returns "SP" or "LP".
func (k Kind) String() string {
	if k == LargePage {
		return "LP"
	}
	return "SP"
}

// PageID names a page within a store. It is the logical index into the page
// sequence; on disk it is encoded in p bytes inside adjacency entries.
type PageID uint64

// RID is a physical record ID: the page and slot where a vertex's record
// lives (paper Fig. 1: ADJ_PID, ADJ_OFF).
type RID struct {
	PID  PageID
	Slot uint32
}

// getUint reads a little-endian unsigned integer of the given byte width.
func getUint(b []byte, width int) uint64 {
	var v uint64
	for i := width - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// putUint writes a little-endian unsigned integer of the given byte width.
// It panics if v does not fit, which indicates a builder bug or a graph too
// large for the configuration.
func putUint(b []byte, width int, v uint64) {
	if width < 8 && v > maxUint(width) {
		panic(fmt.Sprintf("slottedpage: value %d overflows %d-byte field", v, width))
	}
	for i := 0; i < width; i++ {
		b[i] = byte(v)
		v >>= 8
	}
}

// Page is a read-only view over one slotted page's bytes. The zero Page is
// invalid; obtain pages from a Graph.
type Page struct {
	buf []byte
	cfg *Config
}

// NewPage wraps raw page bytes with their configuration.
func NewPage(buf []byte, cfg *Config) Page {
	if len(buf) != cfg.PageSize {
		panic(fmt.Sprintf("slottedpage: page buffer %d bytes, config says %d", len(buf), cfg.PageSize))
	}
	return Page{buf: buf, cfg: cfg}
}

// Bytes returns the raw page buffer.
func (pg Page) Bytes() []byte { return pg.buf }

// NumSlots reports how many vertex slots the page holds.
func (pg Page) NumSlots() int {
	return int(uint32(pg.buf[0]) | uint32(pg.buf[1])<<8 | uint32(pg.buf[2])<<16 | uint32(pg.buf[3])<<24)
}

// Kind reports whether this is a small or a large page.
func (pg Page) Kind() Kind { return Kind(pg.buf[4]) }

// slotPos returns the byte offset of slot i, counting slots backward from
// the end of the page.
func (pg Page) slotPos(i int) int {
	return pg.cfg.PageSize - (i+1)*pg.cfg.SlotSize()
}

// Slot returns the logical vertex ID and record offset stored in slot i.
func (pg Page) Slot(i int) (vid uint64, off int) {
	p := pg.slotPos(i)
	vid = getUint(pg.buf[p:], pg.cfg.VIDBytes)
	off = int(getUint(pg.buf[p+pg.cfg.VIDBytes:], pg.cfg.OffBytes))
	return vid, off
}

// Adj returns the adjacency-list view of the record at slot i.
func (pg Page) Adj(i int) AdjView {
	_, off := pg.Slot(i)
	n := int(getUint(pg.buf[off:], pg.cfg.SizeBytes))
	start := off + pg.cfg.SizeBytes
	return AdjView{buf: pg.buf[start : start+n*pg.cfg.RIDBytes()], cfg: pg.cfg, n: n}
}

// AdjView is a zero-copy view over an adjacency list's physical record IDs.
type AdjView struct {
	buf []byte
	cfg *Config
	n   int
}

// Len is the number of adjacency entries.
func (a AdjView) Len() int { return a.n }

// At decodes entry i into a physical record ID.
func (a AdjView) At(i int) RID {
	p := i * a.cfg.RIDBytes()
	pid := getUint(a.buf[p:], a.cfg.PIDBytes)
	slot := getUint(a.buf[p+a.cfg.PIDBytes:], a.cfg.SlotBytes)
	return RID{PID: PageID(pid), Slot: uint32(slot)}
}

// pageWriter builds one page in place.
type pageWriter struct {
	buf    []byte
	cfg    *Config
	recEnd int // next free byte for records (grows forward)
	slots  int // slots written so far (grow backward)
}

func newPageWriter(cfg *Config, kind Kind) *pageWriter {
	buf := make([]byte, cfg.PageSize)
	buf[4] = byte(kind)
	return &pageWriter{buf: buf, cfg: cfg, recEnd: headerSize}
}

// free reports the bytes left between the record area and the slot area.
func (w *pageWriter) free() int {
	return w.cfg.PageSize - (w.slots * w.cfg.SlotSize()) - w.recEnd
}

// fits reports whether a record with deg entries plus its slot fit.
func (w *pageWriter) fits(deg int) bool {
	return w.cfg.recordSize(deg)+w.cfg.SlotSize() <= w.free() &&
		uint64(w.slots) < w.cfg.MaxSlotNumber()
}

// addVertex reserves a slot and record for vertex vid with deg adjacency
// entries and returns the slot number and a byte slice to fill with entries.
func (w *pageWriter) addVertex(vid uint64, deg int) (slot int, entries []byte) {
	if !w.fits(deg) {
		panic("slottedpage: addVertex called without room")
	}
	slot = w.slots
	w.slots++
	// Slot: VID || OFF.
	sp := w.cfg.PageSize - w.slots*w.cfg.SlotSize()
	putUint(w.buf[sp:], w.cfg.VIDBytes, vid)
	putUint(w.buf[sp+w.cfg.VIDBytes:], w.cfg.OffBytes, uint64(w.recEnd))
	// Record: ADJLIST_SZ || entries.
	putUint(w.buf[w.recEnd:], w.cfg.SizeBytes, uint64(deg))
	start := w.recEnd + w.cfg.SizeBytes
	end := start + deg*w.cfg.RIDBytes()
	w.recEnd = end
	return slot, w.buf[start:end]
}

// finish stamps the slot count and returns the page bytes.
func (w *pageWriter) finish() []byte {
	putUint(w.buf[0:], 4, uint64(w.slots))
	return w.buf
}
