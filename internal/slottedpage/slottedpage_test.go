package slottedpage

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
)

// adjSource is an in-memory Source for tests.
type adjSource struct{ adj [][]uint64 }

func (s adjSource) NumVertices() uint64 { return uint64(len(s.adj)) }
func (s adjSource) NumEdges() uint64 {
	var n uint64
	for _, a := range s.adj {
		n += uint64(len(a))
	}
	return n
}
func (s adjSource) Degree(v uint64) int { return len(s.adj[v]) }
func (s adjSource) Neighbors(v uint64, fn func(uint64)) {
	for _, d := range s.adj[v] {
		fn(d)
	}
}

// tinyConfig keeps pages small so tests exercise SP/LP splitting.
func tinyConfig() Config { return ScaledConfig(2, 2, 256) }

func TestTable2Configurations(t *testing.T) {
	// Paper Table 2: three configurations of a 6-byte physical ID.
	tests := []struct {
		cfg          Config
		maxPages     uint64
		maxSlots     uint64
		maxPageBytes uint64
	}{
		{Config24(), 1 << 16, 1 << 32, (1 << 32) * 20}, // 64 K pages, 4 B slots, 80 GB
		{Config33(), 1 << 24, 1 << 24, (1 << 24) * 20}, // 16 M pages, 16 M slots, 320 MB
		{Config42(), 1 << 32, 1 << 16, (1 << 16) * 20}, // 4 B pages, 64 K slots, 1.25 MB
	}
	for _, tc := range tests {
		if got := tc.cfg.MaxPages(); got != tc.maxPages {
			t.Errorf("(p=%d,q=%d) MaxPages = %d, want %d", tc.cfg.PIDBytes, tc.cfg.SlotBytes, got, tc.maxPages)
		}
		if got := tc.cfg.MaxSlotNumber(); got != tc.maxSlots {
			t.Errorf("(p=%d,q=%d) MaxSlotNumber = %d, want %d", tc.cfg.PIDBytes, tc.cfg.SlotBytes, got, tc.maxSlots)
		}
		if got := tc.cfg.MaxTheoreticalPageSize(); got != tc.maxPageBytes {
			t.Errorf("(p=%d,q=%d) MaxTheoreticalPageSize = %d, want %d", tc.cfg.PIDBytes, tc.cfg.SlotBytes, got, tc.maxPageBytes)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config22()
	if err := good.Validate(); err != nil {
		t.Errorf("Config22 invalid: %v", err)
	}
	bad := []Config{
		{PageSize: 16, PIDBytes: 2, SlotBytes: 2, VIDBytes: 6, OffBytes: 4, SizeBytes: 4},
		{PageSize: 1 << 20, PIDBytes: 0, SlotBytes: 2, VIDBytes: 6, OffBytes: 4, SizeBytes: 4},
		{PageSize: 1 << 20, PIDBytes: 2, SlotBytes: 9, VIDBytes: 6, OffBytes: 4, SizeBytes: 4},
		{PageSize: 1 << 20, PIDBytes: 2, SlotBytes: 2, VIDBytes: 0, OffBytes: 4, SizeBytes: 4},
		{PageSize: 1 << 20, PIDBytes: 2, SlotBytes: 2, VIDBytes: 6, OffBytes: 1, SizeBytes: 4},
		{PageSize: 1 << 20, PIDBytes: 2, SlotBytes: 2, VIDBytes: 6, OffBytes: 4, SizeBytes: 1},
		{PageSize: 1 << 20, PIDBytes: 2, SlotBytes: 2, VIDBytes: 6, OffBytes: 2, SizeBytes: 4}, // 1 MB page, 2-byte OFF
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func TestPutGetUintRoundTrip(t *testing.T) {
	f := func(v uint64, w uint8) bool {
		width := int(w%8) + 1
		v &= maxUint(width)
		buf := make([]byte, 8)
		putUint(buf, width, v)
		return getUint(buf, width) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPutUintOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("overflow did not panic")
		}
	}()
	putUint(make([]byte, 2), 2, 1<<17)
}

// figure1Graph mirrors the paper's Figure 1: v0..v2 low degree, v3 high
// degree (fans out to v4..v99-style neighbors), forcing an LP run.
func figure1Graph(highDeg int) adjSource {
	adj := make([][]uint64, 4+uint64(highDeg))
	adj[0] = []uint64{1, 2}
	adj[1] = []uint64{0, 2}
	adj[2] = []uint64{0, 1, 3}
	big := make([]uint64, highDeg)
	for i := range big {
		big[i] = uint64(4 + i)
	}
	adj[3] = big
	return adjSource{adj: adj}
}

func TestBuildFigure1(t *testing.T) {
	src := figure1Graph(100)
	g, err := Build(src, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != src.NumVertices() || g.NumEdges() != src.NumEdges() {
		t.Fatalf("counts: V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	if g.NumLP() == 0 {
		t.Fatal("expected LP pages for the high-degree vertex")
	}
	// v0..v2 share the first SP.
	if h := g.HomeOf(0); h.PID != 0 || h.Slot != 0 {
		t.Errorf("HomeOf(0) = %+v", h)
	}
	if h := g.HomeOf(2); h.PID != 0 || h.Slot != 2 {
		t.Errorf("HomeOf(2) = %+v", h)
	}
	// v3's home is the first page of its LP run, slot 0.
	h3 := g.HomeOf(3)
	if g.Kind(h3.PID) != LargePage || h3.Slot != 0 {
		t.Errorf("HomeOf(3) = %+v kind %v", h3, g.Kind(h3.PID))
	}
	if e := g.RVT(h3.PID); e.StartVID != 3 || e.LPSeq != 0 {
		t.Errorf("RVT(first LP) = %+v", e)
	}
	// RID->VID translation.
	if got := g.VIDOf(RID{PID: 0, Slot: 2}); got != 2 {
		t.Errorf("VIDOf(SP0 slot2) = %d, want 2", got)
	}
	if got := g.VIDOf(h3); got != 3 {
		t.Errorf("VIDOf(v3 home) = %d, want 3", got)
	}
	checkRoundTrip(t, g, src)
}

// checkRoundTrip asserts the page-decoded adjacency equals the source.
func checkRoundTrip(t *testing.T, g *Graph, src adjSource) {
	t.Helper()
	for v := uint64(0); v < src.NumVertices(); v++ {
		var got []uint64
		g.NeighborsOf(v, func(d uint64) { got = append(got, d) })
		want := src.adj[v]
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("vertex %d adjacency = %v, want %v", v, got, want)
		}
		if g.DegreeOf(v) != len(want) {
			t.Fatalf("DegreeOf(%d) = %d, want %d", v, g.DegreeOf(v), len(want))
		}
	}
}

func TestBuildIsolatedVertices(t *testing.T) {
	src := adjSource{adj: make([][]uint64, 100)} // all degree 0
	src.adj[50] = []uint64{0, 99}
	g, err := Build(src, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if g.NumLP() != 0 {
		t.Errorf("NumLP = %d, want 0", g.NumLP())
	}
	checkRoundTrip(t, g, src)
}

func TestBuildVIDsConsecutivePerPage(t *testing.T) {
	src := randomGraph(rand.New(rand.NewSource(7)), 300, 8, 60)
	g, err := Build(src, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for pid := 0; pid < g.NumPages(); pid++ {
		pg := g.Page(PageID(pid))
		start, count := g.VertexRange(PageID(pid))
		if g.Kind(PageID(pid)) == LargePage {
			if pg.NumSlots() != 1 {
				t.Fatalf("LP %d has %d slots", pid, pg.NumSlots())
			}
			continue
		}
		if uint64(pg.NumSlots()) != count {
			t.Fatalf("page %d slots %d != range count %d", pid, pg.NumSlots(), count)
		}
		for s := 0; s < pg.NumSlots(); s++ {
			vid, _ := pg.Slot(s)
			if vid != start+uint64(s) {
				t.Fatalf("page %d slot %d vid %d, want %d", pid, s, vid, start+uint64(s))
			}
		}
	}
}

// randomGraph produces a graph where most vertices have degree up to
// maxDeg but a few heavy hitters have degree up to heavyDeg.
func randomGraph(r *rand.Rand, n, maxDeg, heavyDeg int) adjSource {
	adj := make([][]uint64, n)
	for v := range adj {
		d := r.Intn(maxDeg + 1)
		if r.Intn(20) == 0 {
			d = heavyDeg
		}
		for i := 0; i < d; i++ {
			adj[v] = append(adj[v], uint64(r.Intn(n)))
		}
	}
	return adjSource{adj: adj}
}

func TestBuildRandomRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for iter := 0; iter < 25; iter++ {
		src := randomGraph(r, 50+r.Intn(400), 10, 80)
		g, err := Build(src, tinyConfig())
		if err != nil {
			t.Fatal(err)
		}
		checkRoundTrip(t, g, src)
	}
}

func TestBuildTooManyVerticesRejected(t *testing.T) {
	// (p=1,q=1) addresses only 256*256 vertices; ask for more.
	cfg := ScaledConfig(1, 1, 4096)
	src := adjSource{adj: make([][]uint64, 70000)}
	if _, err := Build(src, cfg); err == nil {
		t.Error("oversized graph accepted")
	}
}

func TestBuildPageIDOverflowRejected(t *testing.T) {
	// p=1 allows 256 pages; 10k isolated vertices in 256-byte pages need more.
	cfg := ScaledConfig(1, 2, 256)
	src := adjSource{adj: make([][]uint64, 10000)}
	if _, err := Build(src, cfg); err == nil {
		t.Error("page-ID overflow not detected")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	src := randomGraph(rand.New(rand.NewSource(3)), 200, 8, 70)
	g, err := Build(src, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != g.encodedSize() {
		t.Errorf("encoded %d bytes, encodedSize says %d", buf.Len(), g.encodedSize())
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() ||
		g2.NumSP() != g.NumSP() || g2.NumLP() != g.NumLP() {
		t.Fatalf("metadata mismatch after round trip")
	}
	checkRoundTrip(t, g2, src)
}

func TestStoreDetectsCorruption(t *testing.T) {
	src := figure1Graph(100)
	g, err := Build(src, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)/2] ^= 0xFF
	if _, err := Read(bytes.NewReader(data)); !errors.Is(err, ErrChecksum) {
		t.Errorf("corrupted read err = %v, want ErrChecksum", err)
	}
}

func TestStoreRejectsBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestStoreFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.gts")
	src := figure1Graph(30)
	g, err := Build(src, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	checkRoundTrip(t, g2, src)
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestTopologyBytes(t *testing.T) {
	src := figure1Graph(30)
	g, err := Build(src, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := int64(g.NumPages()) * int64(g.Config().PageSize)
	if got := g.TopologyBytes(); got != want {
		t.Errorf("TopologyBytes = %d, want %d", got, want)
	}
}

func TestKindString(t *testing.T) {
	if SmallPage.String() != "SP" || LargePage.String() != "LP" {
		t.Error("Kind.String mismatch")
	}
}

func TestLPRunSequence(t *testing.T) {
	// Degree 100 with 58 entries per 256-byte LP forces a multi-page run
	// with increasing LPSeq.
	src := figure1Graph(100)
	g, err := Build(src, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if g.NumLP() < 2 {
		t.Fatalf("NumLP = %d, want >= 2", g.NumLP())
	}
	for i, pid := range g.LPIDs() {
		e := g.RVT(pid)
		if e.StartVID != 3 {
			t.Errorf("LP %d owner = %d, want 3", pid, e.StartVID)
		}
		if int(e.LPSeq) != i {
			t.Errorf("LP %d seq = %d, want %d", pid, e.LPSeq, i)
		}
	}
}

func TestStreamPagesMatchesLoadedStore(t *testing.T) {
	src := randomGraph(rand.New(rand.NewSource(11)), 250, 8, 70)
	g, err := Build(src, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var seen int
	var edges uint64
	info, err := StreamPages(bytes.NewReader(buf.Bytes()), func(info *StreamInfo, pid PageID, pg Page) error {
		if pg.Kind() != g.Kind(pid) {
			t.Fatalf("page %d kind mismatch", pid)
		}
		if info.RVT[pid] != g.RVT(pid) {
			t.Fatalf("page %d RVT mismatch", pid)
		}
		for s := 0; s < pg.NumSlots(); s++ {
			edges += uint64(pg.Adj(s).Len())
		}
		seen++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != g.NumPages() || info.NumPages != g.NumPages() {
		t.Errorf("streamed %d pages, want %d", seen, g.NumPages())
	}
	if edges != g.NumEdges() {
		t.Errorf("streamed %d edges, want %d", edges, g.NumEdges())
	}
	if info.NumVertices != g.NumVertices() || info.Config != g.Config() {
		t.Error("stream metadata mismatch")
	}
}

func TestStreamPagesDetectsCorruption(t *testing.T) {
	src := figure1Graph(100)
	g, err := Build(src, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)-10] ^= 0x55 // corrupt the last page
	_, err = StreamPages(bytes.NewReader(data), nil)
	if !errors.Is(err, ErrChecksum) {
		t.Errorf("err = %v, want ErrChecksum", err)
	}
}

func TestStreamPagesCallbackError(t *testing.T) {
	src := figure1Graph(30)
	g, _ := Build(src, tinyConfig())
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("stop")
	_, err := StreamPages(bytes.NewReader(buf.Bytes()), func(*StreamInfo, PageID, Page) error {
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want sentinel", err)
	}
}

func TestStreamFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.gts")
	g, err := Build(figure1Graph(100), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	n := 0
	if _, err := StreamFile(path, func(*StreamInfo, PageID, Page) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != g.NumPages() {
		t.Errorf("streamed %d pages", n)
	}
}
