package slottedpage

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// fuzzGraph builds a small valid graph whose serialization seeds the fuzz
// corpora with structurally interesting bytes (SP pages, an LP run, home
// index, trailing CRC).
func fuzzGraph(t interface{ Fatalf(string, ...any) }) *Graph {
	g, err := Build(figure1Graph(60), tinyConfig())
	if err != nil {
		t.Fatalf("building seed graph: %v", err)
	}
	return g
}

func encodeGraph(t interface{ Fatalf(string, ...any) }, g *Graph) []byte {
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatalf("encoding seed graph: %v", err)
	}
	return buf.Bytes()
}

// FuzzStoreRead feeds arbitrary bytes to the store decoder. The decoder's
// contract on hostile input: return an error — never panic, never read out
// of bounds, never allocate unboundedly from lying header fields. Anything
// it does accept must pass full structural validation.
func FuzzStoreRead(f *testing.F) {
	valid := encodeGraph(f, fuzzGraph(f))
	f.Add(valid)
	f.Add(valid[:len(valid)-5]) // truncated mid-CRC
	f.Add(valid[:9])            // truncated mid-header
	for i := 0; i < len(valid); i += 997 {
		flipped := append([]byte(nil), valid...)
		flipped[i] ^= 0x40
		f.Add(flipped)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted graphs must be internally consistent and re-encodable.
		if err := g.Validate(); err != nil {
			t.Fatalf("Read accepted a graph that fails Validate: %v", err)
		}
		if _, err := g.WriteTo(io.Discard); err != nil {
			t.Fatalf("re-encoding accepted graph: %v", err)
		}
	})
}

// FuzzPageValidate feeds arbitrary bytes to the standalone page validator,
// which must classify without panicking or over-reading.
func FuzzPageValidate(f *testing.F) {
	g := fuzzGraph(f)
	for pid := 0; pid < g.NumPages(); pid++ {
		f.Add(append([]byte(nil), g.PageBytes(PageID(pid))...))
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 256))
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg := tinyConfig()
		err := ValidatePage(data, &cfg)
		if len(data) != cfg.PageSize && err == nil {
			t.Fatalf("validated a %d-byte page under PageSize %d", len(data), cfg.PageSize)
		}
	})
}

// FuzzStoreRoundTrip derives a graph from the fuzz input, round-trips it
// through the store codec, and checks two properties: the round trip is
// byte-identical, and any single corrupted byte is rejected (the trailing
// CRC-32 catches every one-byte flip).
func FuzzStoreRoundTrip(f *testing.F) {
	f.Add([]byte{2, 2, 3, 60}, uint16(0))
	f.Add([]byte{0, 1, 0, 1, 7}, uint16(11))
	f.Fuzz(func(t *testing.T, degrees []byte, flipAt uint16) {
		if len(degrees) == 0 || len(degrees) > 64 {
			return
		}
		// Byte i is vertex i's out-degree; neighbors wrap around the ring.
		adj := make([][]uint64, len(degrees))
		for v := range adj {
			deg := int(degrees[v])
			for j := 0; j < deg; j++ {
				adj[v] = append(adj[v], uint64((v+j+1)%len(degrees)))
			}
		}
		g, err := Build(adjSource{adj: adj}, tinyConfig())
		if err != nil {
			return // some shapes legitimately exceed the tiny config
		}
		enc := encodeGraph(t, g)
		back, err := Read(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("decoding own encoding: %v", err)
		}
		if !bytes.Equal(enc, encodeGraph(t, back)) {
			t.Fatal("round trip is not byte-identical")
		}
		// Flip one byte anywhere: the decoder must reject the file.
		bad := append([]byte(nil), enc...)
		bad[int(flipAt)%len(bad)] ^= 0x01
		if _, err := Read(bytes.NewReader(bad)); err == nil {
			t.Fatalf("decoder accepted a file with byte %d corrupted", int(flipAt)%len(bad))
		} else if errors.Is(err, ErrChecksum) {
			return // the usual catch; structural errors are fine too
		}
	})
}
