package gts_test

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	gts "repro"
	"repro/internal/csr"
	"repro/internal/incremental"
)

// incAttach wires a fresh retained-state store to mg exactly as the
// service does on every (re)load: the store starts at the graph's current
// epoch and observes each committed batch through the ingest hook. A
// recovery therefore always starts with an EMPTY store — pre-crash
// retained state is never carried across, because a durable-but-unhooked
// batch (e.g. a crash during the fsync) would leave the old store's delta
// chain one batch behind the recovered snapshot, and serving from it could
// silently miss that batch's effects.
func incAttach(mg *gts.MutableGraph) *incremental.Store {
	st := incremental.NewStore(mg.Epoch())
	mg.OnCommitOps(func(prev, epoch uint64, ops []gts.EdgeOp, old, _ *gts.Graph) {
		st.Commit(prev, epoch, ops, old)
	})
	return st
}

// incCapture retains BFS levels and the PageRank trajectory for the
// graph's current snapshot, as a completed full run would.
func incCapture(t *testing.T, st *incremental.Store, mg *gts.MutableGraph) {
	t.Helper()
	g := mg.Snapshot()
	sys, err := gts.NewSystem(g, gts.Config{})
	if err != nil {
		t.Fatal(err)
	}
	bfs, err := sys.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Capture("bfs", &incremental.Entry{Kind: incremental.KindBFS, Epoch: mg.Epoch(),
		Source: 0, Levels: bfs.Levels}) {
		t.Fatalf("bfs capture rejected at epoch %d", mg.Epoch())
	}
	rec := incremental.NewRecordingPageRank(g, 0.85, 5)
	if _, _, err := sys.RunKernel(rec, 0); err != nil {
		t.Fatal(err)
	}
	if !st.Capture("pagerank", &incremental.Entry{Kind: incremental.KindPageRank, Epoch: mg.Epoch(),
		Traj: rec.Traj, Damping: 0.85, Iterations: 5}) {
		t.Fatalf("pagerank capture rejected at epoch %d", mg.Epoch())
	}
}

// incCheck resolves the retained entries in st against g: every accepted
// delta-expansion plan must produce results byte-identical to a full run
// (a refusal with a reason is a legal fallback). Returns how many plans
// were accepted.
func incCheck(t *testing.T, label string, st *incremental.Store, g *gts.Graph) int {
	t.Helper()
	sys, err := gts.NewSystem(g, gts.Config{})
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	if e, d, ok := st.Lookup("bfs"); ok {
		if k, reason := incremental.PlanBFS(g, e, d); reason == "" {
			out, _, err := sys.RunKernel(k, 0)
			if err != nil {
				t.Fatalf("%s: incremental bfs: %v", label, err)
			}
			full, err := sys.BFS(0)
			if err != nil {
				t.Fatal(err)
			}
			got := k.Levels(out)
			for i := range full.Levels {
				if full.Levels[i] != got[i] {
					t.Fatalf("%s: incremental bfs diverges at vertex %d", label, i)
				}
			}
			hits++
		}
	}
	if e, d, ok := st.Lookup("pagerank"); ok {
		if k, reason := incremental.PlanPageRank(g, e, d, 0.85, 5); reason == "" {
			out, _, err := sys.RunKernel(k, 0)
			if err != nil {
				t.Fatalf("%s: incremental pagerank: %v", label, err)
			}
			full, err := sys.PageRank(0.85, 5)
			if err != nil {
				t.Fatal(err)
			}
			got := k.Ranks(out)
			for i := range full.Ranks {
				if math.Float32bits(full.Ranks[i]) != math.Float32bits(got[i]) {
					t.Fatalf("%s: incremental pagerank diverges at vertex %d", label, i)
				}
			}
			hits++
		}
	}
	return hits
}

// testBaseGraph builds a deterministic small base graph, writes it to a
// .gts file (so OpenMutable's base spec is stable across reopens), and
// returns the spec.
func testBaseGraph(t *testing.T) string {
	t.Helper()
	const n = 96
	rng := rand.New(rand.NewSource(9))
	var edges []csr.Edge
	for v := 0; v < n; v++ {
		edges = append(edges, csr.Edge{Src: uint32(v), Dst: uint32((v + 1) % n)})
		for k := 0; k < 3; k++ {
			edges = append(edges, csr.Edge{Src: uint32(v), Dst: uint32(rng.Intn(n))})
		}
	}
	src, err := csr.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gts.BuildGraph(src, gts.ScaledPageConfig(2, 2, 4096))
	if err != nil {
		t.Fatal(err)
	}
	spec := filepath.Join(t.TempDir(), "base.gts")
	if err := g.WriteFile(spec); err != nil {
		t.Fatal(err)
	}
	return spec
}

// testBatches is the scripted mutation history the crash matrix sweeps:
// inserts, deletes, and a vertex-space grow.
func testBatches() [][]gts.EdgeOp {
	return [][]gts.EdgeOp{
		{{Src: 0, Dst: 50}, {Src: 50, Dst: 0}, {Src: 7, Dst: 7}},
		{{Del: true, Src: 0, Dst: 1}, {Src: 3, Dst: 90}},
		{{Src: 96, Dst: 0}, {Src: 0, Dst: 96}, {Del: true, Src: 7, Dst: 7}},
		{{Src: 40, Dst: 41}, {Del: true, Src: 3, Dst: 90}, {Src: 95, Dst: 96}},
	}
}

// digestAll runs every algorithm over g and hashes the result payloads
// (not the Metrics, which carry host wall-clock noise) into one digest.
func digestAll(t *testing.T, g *gts.Graph) string {
	t.Helper()
	sys, err := gts.NewSystem(g, gts.Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	put := func(label string, v any, err error) {
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		fmt.Fprintf(h, "%s=%v\n", label, v)
	}
	bfs, err := sys.BFS(0)
	put("bfs", bfs.Levels, err)
	pr, err := sys.PageRank(0.85, 5)
	put("pagerank", pr.Ranks, err)
	sp, err := sys.SSSP(0)
	put("sssp", sp.Dist, err)
	cc, err := sys.CC()
	put("cc", cc.Labels, err)
	bc, err := sys.BC(0)
	put("bc", bc.Scores, err)
	rwr, err := sys.RWR(0, 0.2, 5)
	put("rwr", rwr.Scores, err)
	dd, err := sys.DegreeDistribution()
	put("degree", [2]any{dd.Degrees, dd.Histogram}, err)
	kc, err := sys.KCore(2)
	put("kcore", kc.InCore, err)
	rad, err := sys.Radius(4, 8)
	put("radius", [2]any{rad.Radii, rad.EffectiveDiameter}, err)
	nb, err := sys.Neighborhood(0, 2)
	put("neighborhood", nb.Hops, err)
	ce, err := sys.CrossEdges(func(v uint64) bool { return v%2 == 0 })
	put("crossedges", ce.Total, err)
	return fmt.Sprintf("%x", h.Sum(nil))
}

// oracleGraph replays batches[:n] synchronously against a fresh copy of
// the base graph (its own WAL, no faults) — the synchronous-replay oracle
// every recovered state must match byte-for-byte.
func oracleGraph(t *testing.T, spec string, batches [][]gts.EdgeOp, n int) *gts.Graph {
	t.Helper()
	m, err := gts.OpenMutable(spec, filepath.Join(t.TempDir(), "oracle.wal"), gts.MutableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < n; i++ {
		if _, err := m.Ingest(batches[i]); err != nil {
			t.Fatalf("oracle batch %d: %v", i, err)
		}
	}
	return m.Snapshot()
}

// graphsEqual asserts two graphs are byte-identical page stores.
func graphsEqual(t *testing.T, label string, got, want *gts.Graph) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("%s: %d vertices / %d edges, want %d / %d",
			label, got.NumVertices(), got.NumEdges(), want.NumVertices(), want.NumEdges())
	}
	if got.NumPages() != want.NumPages() {
		t.Fatalf("%s: %d pages, want %d", label, got.NumPages(), want.NumPages())
	}
	for pid := 0; pid < got.NumPages(); pid++ {
		p := gts.PageID(pid)
		if got.PageChecksum(p) != want.PageChecksum(p) || !bytes.Equal(got.PageBytes(p), want.PageBytes(p)) {
			t.Fatalf("%s: page %d differs", label, pid)
		}
	}
}

// TestIngestCrashMatrix sweeps every crash kind at every batch position:
// kill the ingest before the WAL append, mid-record, during the fsync, and
// during the page swap, then recover by reopening and require (a) a clean
// Graph.Validate and (b) every algorithm's results byte-identical to the
// synchronous-replay oracle over the committed prefix.
func TestIngestCrashMatrix(t *testing.T) {
	spec := testBaseGraph(t)
	batches := testBatches()

	// Oracle digests for every committed-prefix length, computed once.
	oracleDigest := make([]string, len(batches)+1)
	for n := 0; n <= len(batches); n++ {
		oracleDigest[n] = digestAll(t, oracleGraph(t, spec, batches, n))
	}

	type crashKind struct {
		name string
		plan func(k int64) *gts.FaultPlan
		// committed(k) is how many batches survive a crash at ordinal k.
		committed func(k int) int
	}
	kinds := []crashKind{
		{
			name:      "before-append",
			plan:      func(k int64) *gts.FaultPlan { return &gts.FaultPlan{Seed: 101, WALCrashAppends: []int64{k}} },
			committed: func(k int) int { return k - 1 },
		},
		{
			name:      "torn-mid-record",
			plan:      func(k int64) *gts.FaultPlan { return &gts.FaultPlan{Seed: 202, WALTornAppends: []int64{k}} },
			committed: func(k int) int { return k - 1 },
		},
		{
			name:      "during-fsync",
			plan:      func(k int64) *gts.FaultPlan { return &gts.FaultPlan{Seed: 303, WALCrashSyncs: []int64{k}} },
			committed: func(k int) int { return k },
		},
		{
			name:      "during-page-swap",
			plan:      func(k int64) *gts.FaultPlan { return &gts.FaultPlan{Seed: 404, CrashApplies: []int64{k}} },
			committed: func(k int) int { return k },
		},
	}

	for _, kind := range kinds {
		for k := 1; k <= len(batches); k++ {
			t.Run(fmt.Sprintf("%s/batch%d", kind.name, k), func(t *testing.T) {
				walPath := filepath.Join(t.TempDir(), "crash.wal")
				m, err := gts.OpenMutable(spec, walPath, gts.MutableOptions{Faults: kind.plan(int64(k))})
				if err != nil {
					t.Fatal(err)
				}
				// Retained state rides along exactly as the service wires it:
				// captured before the mutation history, chained by the hook.
				preSt := incAttach(m)
				incCapture(t, preSt, m)
				var crashed bool
				for i, ops := range batches {
					_, err := m.Ingest(ops)
					if err != nil {
						if !errors.Is(err, gts.ErrCrashed) {
							t.Fatalf("batch %d: %v, want an injected crash", i, err)
						}
						if i != k-1 {
							t.Fatalf("crashed at batch %d, want %d", i, k-1)
						}
						crashed = true
						break
					}
				}
				if !crashed {
					t.Fatal("the plan injected no crash")
				}
				if !m.Dead() {
					t.Fatal("graph not dead after crash")
				}
				// A dead graph refuses further ingest.
				if _, err := m.Ingest(batches[0]); !errors.Is(err, gts.ErrCrashed) {
					t.Fatalf("ingest on dead graph = %v, want ErrCrashed", err)
				}
				m.Close()

				// Recovery: reopen and replay.
				r, err := gts.OpenMutable(spec, walPath, gts.MutableOptions{})
				if err != nil {
					t.Fatalf("recovery open: %v", err)
				}
				defer r.Close()
				want := kind.committed(k)
				if r.ReplayedBatches() != want {
					t.Fatalf("replayed %d batches, want %d", r.ReplayedBatches(), want)
				}
				if r.Epoch() != uint64(want) {
					t.Fatalf("recovered epoch %d, want %d", r.Epoch(), want)
				}
				snap := r.Snapshot()
				if err := snap.Validate(); err != nil {
					t.Fatalf("recovered graph invalid: %v", err)
				}
				// Recovery discards retained state: the fresh store holds no
				// entries, so no stale-epoch state can be consulted. The
				// pre-crash store must NOT be reused — for fsync/apply
				// crashes the WAL is one durable batch ahead of its hook
				// chain, so its deltas no longer describe the recovered
				// snapshot.
				recSt := incAttach(r)
				if _, _, ok := recSt.Lookup("bfs"); ok {
					t.Fatal("fresh post-recovery store served a retained entry")
				}
				if preSt.Epoch() > r.Epoch() {
					t.Fatalf("pre-crash store at epoch %d ahead of recovered epoch %d",
						preSt.Epoch(), r.Epoch())
				}
				incCapture(t, recSt, r)
				graphsEqual(t, "recovered vs oracle", snap, oracleGraph(t, spec, batches, want))
				if got := digestAll(t, snap); got != oracleDigest[want] {
					t.Fatalf("recovered algorithm digests diverge from the %d-batch oracle", want)
				}
				// The recovered graph accepts new ingest and lands where the
				// uncrashed history would.
				for i := want; i < len(batches); i++ {
					if _, err := r.Ingest(batches[i]); err != nil {
						t.Fatalf("post-recovery batch %d: %v", i, err)
					}
				}
				if got := digestAll(t, r.Snapshot()); got != oracleDigest[len(batches)] {
					t.Fatal("post-recovery completion diverges from the full oracle")
				}
				// Incremental recompute over the post-recovery suffix: every
				// accepted plan must match a full run byte-for-byte; an empty
				// suffix (recovery already held the whole history) must serve
				// both algorithms incrementally.
				hits := incCheck(t, "post-recovery", recSt, r.Snapshot())
				if want == len(batches) && hits != 2 {
					t.Fatalf("empty-suffix recovery served %d/2 incremental plans", hits)
				}
			})
		}
	}
}

// TestIngestMatchesFromScratchRebuild: a fully applied history yields a
// graph byte-identical to a from-scratch build over the same edge list.
func TestIngestMatchesFromScratchRebuild(t *testing.T) {
	spec := testBaseGraph(t)
	batches := testBatches()
	m, err := gts.OpenMutable(spec, filepath.Join(t.TempDir(), "full.wal"), gts.MutableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i, ops := range batches {
		if lsn, err := m.Ingest(ops); err != nil || lsn != uint64(i+1) {
			t.Fatalf("batch %d: lsn %d err %v", i, lsn, err)
		}
	}
	snap := m.Snapshot()

	// From-scratch: decode the base adjacency, apply the ops logically,
	// rebuild with the same page config.
	base, err := gts.Open(spec)
	if err != nil {
		t.Fatal(err)
	}
	adj := make([][]uint64, base.NumVertices())
	for v := uint64(0); v < base.NumVertices(); v++ {
		base.NeighborsOf(v, func(dst uint64) { adj[v] = append(adj[v], dst) })
	}
	for _, ops := range batches {
		for _, op := range ops {
			max := op.Src
			if op.Dst > max {
				max = op.Dst
			}
			if max >= uint64(len(adj)) {
				grown := make([][]uint64, max+1)
				copy(grown, adj)
				adj = grown
			}
			if op.Del {
				kept := adj[op.Src][:0]
				for _, d := range adj[op.Src] {
					if d != op.Dst {
						kept = append(kept, d)
					}
				}
				adj[op.Src] = kept
			} else {
				adj[op.Src] = append(adj[op.Src], op.Dst)
			}
		}
	}
	var edges []csr.Edge
	for v, row := range adj {
		for _, d := range row {
			edges = append(edges, csr.Edge{Src: uint32(v), Dst: uint32(d)})
		}
	}
	src, err := csr.FromEdges(len(adj), edges)
	if err != nil {
		t.Fatal(err)
	}
	want, err := gts.BuildGraph(src, base.Config())
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, "ingested vs from-scratch rebuild", snap, want)
	if digestAll(t, snap) != digestAll(t, want) {
		t.Fatal("algorithm digests diverge between ingested and rebuilt graphs")
	}
}
