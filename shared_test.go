package gts

import (
	"reflect"
	"testing"

	"repro/internal/kernels"
)

// TestSystemRunShared exercises the public wave-group entry point: a mixed
// BFS + PageRank group must match the solo algorithm results exactly and
// report group-level sharing stats.
func TestSystemRunShared(t *testing.T) {
	g := smallGraph(t)
	sys, err := NewSystem(g, Config{ShareStreams: true})
	if err != nil {
		t.Fatal(err)
	}

	bfsK := kernels.NewBFS(g)
	prK := kernels.NewPageRank(g, 0.85, 5)
	outs, stats, err := sys.RunShared([]SharedJob{
		{Kernel: bfsK, Source: 0},
		{Kernel: bfsK, Source: 512},
		{Kernel: prK, Source: 0},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 3 || stats.Members != 3 {
		t.Fatalf("outcomes=%d members=%d, want 3/3", len(outs), stats.Members)
	}
	for i, o := range outs {
		if o.Err != nil || o.Declined {
			t.Fatalf("outcome %d: err=%v declined=%v", i, o.Err, o.Declined)
		}
		if o.Metrics.Elapsed <= 0 {
			t.Errorf("outcome %d: Elapsed = %v", i, o.Metrics.Elapsed)
		}
	}
	if stats.SharedPageCopies == 0 || stats.BytesSaved == 0 {
		t.Errorf("no sharing recorded: %+v", stats)
	}
	if stats.AmortizedBytesPerJob() <= 0 {
		t.Errorf("AmortizedBytesPerJob = %v", stats.AmortizedBytesPerJob())
	}

	// BFS members decode against solo runs. The kernel instance is shared
	// between the two BFS jobs on purpose: kernels are stateless decoders,
	// all per-job data lives in the outcome's State.
	for i, src := range []uint64{0, 512} {
		solo, err := sys.BFS(src)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(bfsK.Levels(outs[i].State), solo.Levels) {
			t.Errorf("BFS member %d (source %d) differs from solo", i, src)
		}
	}
	soloPR, err := sys.PageRank(0.85, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(prK.Ranks(outs[2].State), soloPR.Ranks) {
		t.Error("PageRank member differs from solo")
	}
}

// TestSystemRunSharedInheritsFaults: a nil per-job fault plan inherits the
// system's, and results stay identical to the fault-free group.
func TestSystemRunSharedInheritsFaults(t *testing.T) {
	g := smallGraph(t)
	plan := &FaultPlan{Seed: 11, TransferErrorRate: 0.05, TransferStallRate: 0.05}
	sys, err := NewSystem(g, Config{Faults: plan, ShareStreams: true})
	if err != nil {
		t.Fatal(err)
	}
	k := kernels.NewBFS(g)
	outs, _, err := sys.RunShared([]SharedJob{{Kernel: k, Source: 0}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Err != nil {
		t.Fatal(outs[0].Err)
	}
	if outs[0].Metrics.Faults.Injected() == 0 {
		t.Error("inherited fault plan injected nothing")
	}

	clean, err := NewSystem(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	solo, err := clean.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(k.Levels(outs[0].State), solo.Levels) {
		t.Error("faulted shared run differs from clean solo")
	}
}
