package gts

import (
	"math"
	"path/filepath"
	"testing"

	"repro/internal/graphgen"
	"repro/internal/kernels"
	"repro/internal/trace"
	"repro/internal/verify"
)

func smallGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := Generate("RMAT27", 27-11)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGenerateKnownAndUnknown(t *testing.T) {
	g := smallGraph(t)
	if g.NumVertices() != 2048 {
		t.Errorf("V = %d", g.NumVertices())
	}
	if _, err := Generate("NotAGraph", 4); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestPageConfigFor(t *testing.T) {
	if cfg := PageConfigFor("RMAT31", 12); cfg.PIDBytes != 3 || cfg.SlotBytes != 3 {
		t.Errorf("RMAT31 config = %+v, want (3,3)", cfg)
	}
	if cfg := PageConfigFor("Twitter", 12); cfg.PIDBytes != 2 || cfg.SlotBytes != 2 {
		t.Errorf("Twitter config = %+v, want (2,2)", cfg)
	}
	if cfg := PageConfigFor("Twitter", 30); cfg.PageSize != 4096 {
		t.Errorf("page size floor = %d", cfg.PageSize)
	}
}

func TestEndToEndAllAlgorithms(t *testing.T) {
	d, _ := graphgen.ByName("RMAT27")
	raw := d.MustGenerate(27 - 11)
	g := smallGraph(t)
	sys, err := NewSystem(g, Config{GPUs: 2})
	if err != nil {
		t.Fatal(err)
	}

	bfs, err := sys.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	wantLv := verify.BFS(raw, 0)
	for v := range wantLv {
		if bfs.Levels[v] != wantLv[v] {
			t.Fatalf("BFS vertex %d mismatch", v)
		}
	}
	if bfs.Elapsed <= 0 || bfs.MTEPS <= 0 {
		t.Error("BFS metrics missing")
	}

	pr, err := sys.PageRank(0.85, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantPR := verify.PageRank(raw, 0.85, 3)
	for v := range wantPR {
		if math.Abs(float64(pr.Ranks[v])-wantPR[v]) > 1e-5 {
			t.Fatalf("PR vertex %d mismatch", v)
		}
	}

	sssp, err := sys.SSSP(0)
	if err != nil {
		t.Fatal(err)
	}
	wantD := verify.SSSP(raw, 0, kernels.Weight)
	for v := range wantD {
		if !math.IsInf(wantD[v], 1) && float64(sssp.Dist[v]) != wantD[v] {
			t.Fatalf("SSSP vertex %d mismatch", v)
		}
	}

	cc, err := sys.CC()
	if err != nil {
		t.Fatal(err)
	}
	wantCC := verify.WCC(raw)
	for v := range wantCC {
		if cc.Labels[v] != wantCC[v] {
			t.Fatalf("CC vertex %d mismatch", v)
		}
	}

	bc, err := sys.BC(0)
	if err != nil {
		t.Fatal(err)
	}
	wantBC := verify.BC(raw, 0)
	for v := range wantBC {
		if math.Abs(bc.Scores[v]-wantBC[v]) > 1e-6 {
			t.Fatalf("BC vertex %d mismatch", v)
		}
	}
}

func TestStorageConfigs(t *testing.T) {
	g := smallGraph(t)
	for _, st := range []Storage{InMemory, SSDs, HDDs} {
		sys, err := NewSystem(g, Config{Storage: st, Devices: 1})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.PageRank(0.85, 1); err != nil {
			t.Fatalf("storage %d: %v", st, err)
		}
	}
}

func TestScaledHardware(t *testing.T) {
	g := smallGraph(t)
	sys, err := NewSystem(g, Config{ScaleFactor: 1 << 12, Streams: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.BFS(0); err != nil {
		t.Fatal(err)
	}
}

func TestTraceThroughAPI(t *testing.T) {
	g := smallGraph(t)
	rec := trace.New()
	sys, err := NewSystem(g, Config{Trace: rec, Streams: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.PageRank(0.85, 1); err != nil {
		t.Fatal(err)
	}
	if rec.Total(trace.Kernel) == 0 {
		t.Error("no kernel spans traced")
	}
}

func TestSaveAndLoadGraph(t *testing.T) {
	g := smallGraph(t)
	path := filepath.Join(t.TempDir(), "g.gts")
	if err := g.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Error("round trip mismatch")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	g := smallGraph(t)
	if _, err := NewSystem(g, Config{Streams: 99}); err == nil {
		t.Error("99 streams accepted")
	}
}

func TestExtensionAlgorithmsThroughAPI(t *testing.T) {
	d, _ := graphgen.ByName("RMAT27")
	raw := d.MustGenerate(27 - 11)
	g := smallGraph(t)
	sys, err := NewSystem(g, Config{GPUs: 2})
	if err != nil {
		t.Fatal(err)
	}

	rwr, err := sys.RWR(7, 0.15, 5)
	if err != nil {
		t.Fatal(err)
	}
	wantRWR := verify.RWR(raw, 7, 0.15, 5)
	for v := range wantRWR {
		if math.Abs(float64(rwr.Scores[v])-wantRWR[v]) > 1e-5 {
			t.Fatalf("RWR vertex %d = %v, want %v", v, rwr.Scores[v], wantRWR[v])
		}
	}

	deg, err := sys.DegreeDistribution()
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(0); v < raw.NumVertices(); v++ {
		if int(deg.Degrees[v]) != raw.Degree(v) {
			t.Fatalf("degree vertex %d = %d, want %d", v, deg.Degrees[v], raw.Degree(v))
		}
	}
	var sum int64
	for _, c := range deg.Histogram {
		sum += c
	}
	if sum != int64(raw.NumVertices()) {
		t.Errorf("histogram sums to %d", sum)
	}

	kc, err := sys.KCore(4)
	if err != nil {
		t.Fatal(err)
	}
	wantKC := verify.KCore(raw, 4)
	for v := range wantKC {
		if kc.InCore[v] != wantKC[v] {
			t.Fatalf("k-core vertex %d = %v, want %v", v, kc.InCore[v], wantKC[v])
		}
	}
}

func TestBallAndCrossEdgesAndRadiusAPI(t *testing.T) {
	g := smallGraph(t)
	sys, err := NewSystem(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ball, err := sys.Neighborhood(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	inside := 0
	for _, h := range ball.Hops {
		if h >= 0 {
			if h > 2 {
				t.Fatalf("hop %d beyond cap", h)
			}
			inside++
		}
	}
	if inside < 2 {
		t.Error("ball contains almost nothing")
	}
	ce, err := sys.CrossEdges(func(v uint64) bool { return v%2 == 0 })
	if err != nil {
		t.Fatal(err)
	}
	if ce.Total <= 0 || ce.Total > int64(g.NumEdges()) {
		t.Errorf("cross edges = %d", ce.Total)
	}
	rad, err := sys.Radius(8, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(rad.Radii) != int(g.NumVertices()) || rad.EffectiveDiameter < 1 {
		t.Errorf("radius result malformed: %d radii, diameter %d", len(rad.Radii), rad.EffectiveDiameter)
	}
}
