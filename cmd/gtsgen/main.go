// Command gtsgen generates a dataset from the registry (RMAT26..RMAT32,
// Twitter, UK2007, YahooWeb) or from raw RMAT parameters, packs it into the
// slotted page format, and writes it to a store file for cmd/gts.
//
// Usage:
//
//	gtsgen -dataset RMAT27 -shrink 12 -o rmat27.gts
//	gtsgen -scale 16 -edgefactor 16 -o custom.gts
//	gtsgen -input edges.txt -o mine.gts         # SNAP-style edge list
package main

import (
	"flag"
	"fmt"
	"os"

	gts "repro"
	"repro/internal/csr"
	"repro/internal/rmat"
	"repro/internal/slottedpage"
)

func main() {
	dataset := flag.String("dataset", "", "registry dataset name (empty = raw RMAT via -scale)")
	input := flag.String("input", "", "edge-list file to load instead of generating ('src dst' per line)")
	shrink := flag.Int("shrink", 12, "down-scaling for registry datasets, as a power of two")
	scale := flag.Int("scale", 16, "RMAT scale for raw generation (V = 2^scale)")
	edgeFactor := flag.Int("edgefactor", 16, "edges per vertex for raw generation")
	seed := flag.Int64("seed", 1, "RMAT seed for raw generation")
	p := flag.Int("p", 2, "page-ID byte width")
	q := flag.Int("q", 2, "slot-number byte width")
	pageSize := flag.Int("pagesize", 1<<20, "page size in bytes")
	out := flag.String("o", "graph.gts", "output file")
	flag.Parse()

	var g *gts.Graph
	var err error
	if *input != "" {
		var raw *csr.Graph
		raw, err = csr.ReadEdgeListFile(*input)
		if err == nil {
			g, err = gts.BuildGraph(raw, gts.ScaledPageConfig(*p, *q, *pageSize))
		}
	} else if *dataset != "" {
		g, err = gts.Generate(*dataset, *shrink)
	} else {
		params := rmat.Default(*scale)
		params.EdgeFactor = *edgeFactor
		params.Seed = *seed
		var raw interface {
			slottedpage.Source
		}
		raw, err = rmat.Generate(params)
		if err == nil {
			g, err = gts.BuildGraph(raw, gts.ScaledPageConfig(*p, *q, *pageSize))
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gtsgen:", err)
		os.Exit(1)
	}
	if err := g.WriteFile(*out); err != nil {
		fmt.Fprintln(os.Stderr, "gtsgen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d vertices, %d edges, %d SP + %d LP pages of %d bytes\n",
		*out, g.NumVertices(), g.NumEdges(), g.NumSP(), g.NumLP(), g.Config().PageSize)
}
