// Command gts runs a graph algorithm over a slotted-page store (or a
// registry dataset) on the simulated GTS machine and prints the result
// summary and run metrics.
//
// The -graph flag takes a gts.Open spec — a .gts store file or a registry
// dataset, optionally with an @shrink suffix — the same one-load path the
// gtsd service and the examples use.
//
// Usage:
//
//	gts -graph RMAT27@12 -algo pagerank -gpus 2
//	gts -graph web.gts -algo bfs -source 0 -storage ssd -devices 2
//	gts -graph web.gts -algo cc -strategy s -streams 8 -timeline
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	gts "repro"
	"repro/internal/trace"
)

func main() {
	graphSpec := flag.String("graph", "RMAT27@12", "graph spec: store file or dataset[@shrink]")
	algo := flag.String("algo", "bfs", "bfs | pagerank | sssp | cc | bc | rwr | degree | kcore | radius | ball")
	source := flag.Uint64("source", 0, "start vertex for bfs/sssp/bc")
	iters := flag.Int("iters", 10, "PageRank/RWR iterations")
	kParam := flag.Int("k", 3, "K for kcore, hop count for ball")
	damping := flag.Float64("damping", 0.85, "PageRank damping factor")
	gpus := flag.Int("gpus", 1, "number of GPUs")
	storage := flag.String("storage", "mem", "mem | ssd | hdd")
	devices := flag.Int("devices", 2, "SSD/HDD count")
	strategy := flag.String("strategy", "p", "p (performance) | s (scalability)")
	streams := flag.Int("streams", 32, "GPU streams per GPU (1-32)")
	tech := flag.String("technique", "edge", "edge | vertex | hybrid micro-level technique")
	cache := flag.Int64("cache", 0, "page cache bytes per GPU (0 = all free device memory, -1 = off)")
	scaleHW := flag.Int64("scalehw", 0, "divide memory capacities by this factor (0 = full size)")
	timeline := flag.Bool("timeline", false, "print the per-stream copy/kernel timeline")
	top := flag.Int("top", 5, "result entries to print")
	flag.Parse()

	g, err := gts.Open(*graphSpec)
	fail(err)

	cfg := gts.Config{
		GPUs:        *gpus,
		Devices:     *devices,
		Streams:     *streams,
		CacheBytes:  *cache,
		ScaleFactor: *scaleHW,
	}
	switch strings.ToLower(*storage) {
	case "ssd":
		cfg.Storage = gts.SSDs
	case "hdd":
		cfg.Storage = gts.HDDs
	case "mem":
	default:
		fail(fmt.Errorf("unknown storage %q", *storage))
	}
	if strings.EqualFold(*strategy, "s") {
		cfg.Strategy = gts.StrategyS
	}
	switch strings.ToLower(*tech) {
	case "vertex":
		cfg.Tech = gts.VertexCentric
	case "hybrid":
		cfg.Tech = gts.Hybrid
	case "edge":
	default:
		fail(fmt.Errorf("unknown technique %q", *tech))
	}
	var rec *trace.Recorder
	if *timeline {
		rec = trace.New()
		cfg.Trace = rec
	}

	sys, err := gts.NewSystem(g, cfg)
	fail(err)

	fmt.Printf("graph: %d vertices, %d edges, %d SP + %d LP pages\n",
		g.NumVertices(), g.NumEdges(), g.NumSP(), g.NumLP())

	var m gts.Metrics
	switch strings.ToLower(*algo) {
	case "bfs":
		res, err := sys.BFS(*source)
		fail(err)
		m = res.Metrics
		reached, depth := 0, int16(0)
		for _, l := range res.Levels {
			if l >= 0 {
				reached++
				if l > depth {
					depth = l
				}
			}
		}
		fmt.Printf("BFS from %d: reached %d vertices, depth %d\n", *source, reached, depth)
	case "pagerank":
		res, err := sys.PageRank(*damping, *iters)
		fail(err)
		m = res.Metrics
		fmt.Printf("PageRank (%d iterations): top %d vertices:\n", *iters, *top)
		printTop(res.Ranks, *top)
	case "sssp":
		res, err := sys.SSSP(*source)
		fail(err)
		m = res.Metrics
		reached := 0
		for _, d := range res.Dist {
			if d < 1e30 {
				reached++
			}
		}
		fmt.Printf("SSSP from %d: reached %d vertices\n", *source, reached)
	case "cc":
		res, err := sys.CC()
		fail(err)
		m = res.Metrics
		comps := map[uint32]int{}
		for _, l := range res.Labels {
			comps[l]++
		}
		largest := 0
		for _, n := range comps {
			if n > largest {
				largest = n
			}
		}
		fmt.Printf("CC: %d components, largest has %d vertices\n", len(comps), largest)
	case "bc":
		res, err := sys.BC(*source)
		fail(err)
		m = res.Metrics
		fmt.Printf("BC from %d: top %d brokers:\n", *source, *top)
		printTop(res.Scores, *top)
	case "rwr":
		res, err := sys.RWR(*source, 0.15, *iters)
		fail(err)
		m = res.Metrics
		fmt.Printf("RWR from %d: top %d proximate vertices:\n", *source, *top)
		printTop(res.Scores, *top)
	case "degree":
		res, err := sys.DegreeDistribution()
		fail(err)
		m = res.Metrics
		fmt.Printf("degree distribution: %d distinct degrees, max %d\n",
			len(res.Histogram), len(res.Histogram)-1)
	case "kcore":
		res, err := sys.KCore(*kParam)
		fail(err)
		m = res.Metrics
		in := 0
		for _, a := range res.InCore {
			if a {
				in++
			}
		}
		fmt.Printf("%d-core: %d of %d vertices survive\n", *kParam, in, g.NumVertices())
	case "radius":
		res, err := sys.Radius(8, 256)
		fail(err)
		m = res.Metrics
		fmt.Printf("effective diameter (90%%): %d hops\n", res.EffectiveDiameter)
	case "ball":
		res, err := sys.Neighborhood(*source, *kParam)
		fail(err)
		m = res.Metrics
		in := 0
		for _, h := range res.Hops {
			if h >= 0 {
				in++
			}
		}
		fmt.Printf("%d-hop ball around %d: %d vertices\n", *kParam, *source, in)
	default:
		fail(fmt.Errorf("unknown algorithm %q", *algo))
	}

	fmt.Printf("\nelapsed (virtual):  %v\n", m.Elapsed)
	fmt.Printf("levels/iterations:  %d\n", m.Levels)
	fmt.Printf("pages streamed:     %d (cache hit rate %.0f%%)\n", m.PagesStreamed, 100*m.CacheHitRate)
	fmt.Printf("bytes to GPU:       %d\n", m.BytesToGPU)
	fmt.Printf("storage bytes:      %d\n", m.StorageBytes)
	fmt.Printf("transfer vs kernel: %v vs %v\n", m.TransferTime, m.KernelTime)
	fmt.Printf("WA footprint:       %d bytes\n", m.WABytes)
	fmt.Printf("throughput:         %.0f MTEPS\n", m.MTEPS)
	if rec != nil {
		fmt.Println()
		fail(rec.RenderTimeline(os.Stdout, 100))
	}
}

// printTop prints the k highest entries of a score vector.
func printTop[T float32 | float64](scores []T, k int) {
	type pair struct {
		v uint64
		s float64
	}
	ps := make([]pair, len(scores))
	for i, s := range scores {
		ps[i] = pair{uint64(i), float64(s)}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].s > ps[j].s })
	if k > len(ps) {
		k = len(ps)
	}
	for i := 0; i < k; i++ {
		fmt.Printf("  #%d vertex %-8d %.6g\n", i+1, ps[i].v, ps[i].s)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gts:", err)
		os.Exit(1)
	}
}
