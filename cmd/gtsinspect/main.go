// Command gtsinspect prints the structure of a slotted-page store: layout
// configuration, page counts, degree statistics and the largest vertices'
// LP runs — the quantities behind the paper's Tables 2-4.
//
// Usage:
//
//	gtsinspect graph.gts
//	gtsinspect -stream graph.gts   # constant-memory scan of a huge store
//
// It also renders exported run traces (see gtsbench -trace and gtsd's
// /debug/trace/{id}) as an ASCII timeline:
//
//	gtsinspect trace run.json
//	gtsinspect trace -width 120 run.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	gts "repro"
	"repro/internal/slottedpage"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "trace" {
		traceInspect(os.Args[2:])
		return
	}
	stream := flag.Bool("stream", false, "scan the store page-by-page in constant memory")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gtsinspect [-stream] <file.gts> | gtsinspect trace <trace.json>")
		os.Exit(2)
	}
	if *stream {
		streamInspect(flag.Arg(0))
		return
	}
	g, err := gts.LoadGraph(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "gtsinspect:", err)
		os.Exit(1)
	}
	cfg := g.Config()
	fmt.Printf("store:      %s\n", flag.Arg(0))
	fmt.Printf("layout:     (p=%d,q=%d), %d-byte pages, %d-byte VID, %d-byte OFF\n",
		cfg.PIDBytes, cfg.SlotBytes, cfg.PageSize, cfg.VIDBytes, cfg.OffBytes)
	fmt.Printf("capacity:   %d pages x %d slots (theoretical max page %d bytes)\n",
		cfg.MaxPages(), cfg.MaxSlotNumber(), cfg.MaxTheoreticalPageSize())
	fmt.Printf("vertices:   %d\n", g.NumVertices())
	fmt.Printf("edges:      %d\n", g.NumEdges())
	fmt.Printf("pages:      %d SP + %d LP = %d (%d bytes of topology)\n",
		g.NumSP(), g.NumLP(), g.NumPages(), g.TopologyBytes())

	// Degree statistics from the pages themselves.
	var maxDeg, slots int
	var maxVid uint64
	for _, pid := range g.SPIDs() {
		pg := g.Page(pid)
		n := pg.NumSlots()
		slots += n
		for s := 0; s < n; s++ {
			vid, _ := pg.Slot(s)
			if d := pg.Adj(s).Len(); d > maxDeg {
				maxDeg, maxVid = d, vid
			}
		}
	}
	fmt.Printf("SP slots:   %d (avg %.1f per page)\n", slots, avg(slots, g.NumSP()))
	if g.NumLP() > 0 {
		runs := map[uint64]int{}
		for _, pid := range g.LPIDs() {
			runs[g.RVT(pid).StartVID]++
		}
		fmt.Printf("LP runs:    %d large vertices\n", len(runs))
		longest, owner := 0, uint64(0)
		for v, n := range runs {
			if n > longest || (n == longest && v < owner) {
				longest, owner = n, v
			}
		}
		fmt.Printf("longest LP: vertex %d across %d pages (degree %d)\n",
			owner, longest, g.DegreeOf(owner))
	} else {
		fmt.Printf("max degree: %d (vertex %d)\n", maxDeg, maxVid)
	}
}

// streamInspect scans the store with slottedpage.StreamFile, touching one
// page at a time — how a tool audits a store larger than memory.
func streamInspect(path string) {
	var pages, slots int
	var edges uint64
	kinds := map[slottedpage.Kind]int{}
	info, err := slottedpage.StreamFile(path, func(info *slottedpage.StreamInfo, pid slottedpage.PageID, pg slottedpage.Page) error {
		pages++
		kinds[pg.Kind()]++
		n := pg.NumSlots()
		slots += n
		for s := 0; s < n; s++ {
			edges += uint64(pg.Adj(s).Len())
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gtsinspect:", err)
		os.Exit(1)
	}
	fmt.Printf("store:     %s (streamed, checksum verified)\n", path)
	fmt.Printf("layout:    (p=%d,q=%d), %d-byte pages\n",
		info.Config.PIDBytes, info.Config.SlotBytes, info.Config.PageSize)
	fmt.Printf("vertices:  %d (header) / %d slots scanned\n", info.NumVertices, slots)
	fmt.Printf("edges:     %d (header) / %d entries scanned\n", info.NumEdges, edges)
	fmt.Printf("pages:     %d = %d SP + %d LP\n", pages, kinds[slottedpage.SmallPage], kinds[slottedpage.LargePage])
	if edges != info.NumEdges {
		fmt.Fprintln(os.Stderr, "gtsinspect: WARNING: scanned edges differ from header")
		os.Exit(1)
	}
}

func avg(total, count int) float64 {
	if count == 0 {
		return 0
	}
	return float64(total) / float64(count)
}
