package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
)

// traceInspect implements `gtsinspect trace [-width N] <file>`: it parses an
// exported trace (Chrome trace_event JSON or gts-trace JSONL, auto-detected),
// prints per-kind busy time, and renders the ASCII stream timeline.
func traceInspect(args []string) {
	fs := flag.NewFlagSet("gtsinspect trace", flag.ExitOnError)
	width := fs.Int("width", 80, "timeline width in character buckets")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gtsinspect trace [-width N] <trace.json|trace.jsonl>")
		os.Exit(2)
	}
	raw, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "gtsinspect:", err)
		os.Exit(1)
	}
	rec, err := trace.Parse(raw)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gtsinspect:", err)
		os.Exit(1)
	}
	sum := rec.Summary()
	fmt.Printf("trace:     %s\n", fs.Arg(0))
	if id := rec.ID(); id != "" {
		fmt.Printf("id:        %s\n", id)
	}
	fmt.Printf("spans:     %d\n", sum.Spans)
	fmt.Printf("makespan:  %v\n", sum.Makespan)
	for k := 0; k < trace.NumKinds; k++ {
		if busy := sum.Busy[k]; busy > 0 {
			fmt.Printf("%-10s %v\n", trace.Kind(k).String()+":", busy)
		}
	}
	fmt.Println()
	if err := rec.RenderTimeline(os.Stdout, *width); err != nil {
		fmt.Fprintln(os.Stderr, "gtsinspect:", err)
		os.Exit(1)
	}
}
