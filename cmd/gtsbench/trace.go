package main

import (
	"fmt"
	"os"
	"strings"

	gts "repro"
	"repro/internal/trace"
)

// traceAlgos maps -trace-algo names to runs through the public System API.
var traceAlgos = map[string]func(sys *gts.System, iters int) error{
	"bfs": func(sys *gts.System, _ int) error {
		_, err := sys.BFS(0)
		return err
	},
	"pagerank": func(sys *gts.System, iters int) error {
		_, err := sys.PageRank(0.85, iters)
		return err
	},
	"cc": func(sys *gts.System, _ int) error {
		_, err := sys.CC()
		return err
	},
	"bc": func(sys *gts.System, _ int) error {
		_, err := sys.BC(0)
		return err
	},
}

// traceAlgoNames lists the -trace-algo choices in usage order.
var traceAlgoNames = []string{"bfs", "pagerank", "cc", "bc"}

// runTrace executes one traced run of an algorithm over a generated dataset
// and writes the recorder to out — Chrome trace_event JSON (Perfetto /
// chrome://tracing loadable), or span-per-line JSONL when out ends in
// ".jsonl". The engine is deterministic and host workers never emit spans,
// so the file is byte-identical across reruns and -trace-workers settings.
func runTrace(dataset string, shrink int, algo string, iters, workers int, out string) error {
	run, ok := traceAlgos[algo]
	if !ok {
		return fmt.Errorf("unknown -trace-algo %q (want %s)", algo, strings.Join(traceAlgoNames, "|"))
	}
	g, err := gts.Generate(dataset, shrink)
	if err != nil {
		return err
	}
	rec := trace.NewWithID(fmt.Sprintf("%s-%s@%d", algo, dataset, shrink))
	sys, err := gts.NewSystem(g, gts.Config{Trace: rec, HostWorkers: workers})
	if err != nil {
		return err
	}
	if err := run(sys, iters); err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if strings.HasSuffix(out, ".jsonl") {
		err = rec.WriteJSONL(f)
	} else {
		err = rec.WriteChrome(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	sum := rec.Summary()
	fmt.Printf("gtsbench: traced %s over %s@%d: %d spans, %v makespan -> %s\n",
		algo, dataset, shrink, sum.Spans, sum.Makespan, out)
	return nil
}
