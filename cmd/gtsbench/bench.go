package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	gts "repro"
	"repro/internal/incremental"
	"repro/internal/kernels"
	"repro/internal/slottedpage"
)

// benchEntry is one kernel x worker-count measurement in the regression
// record: real wall-clock cost (whole run and functional-kernel share),
// virtual-time throughput, and the allocation profile of one run.
type benchEntry struct {
	Kernel string `json:"kernel"`
	// Workers is the host worker-pool size the runs executed with.
	Workers int `json:"workers"`
	// WallSeconds is the mean real time of one full engine run;
	// HostKernelSeconds is the share spent in functional kernel execution —
	// the part HostWorkers parallelizes.
	WallSeconds       float64 `json:"wall_seconds"`
	HostKernelSeconds float64 `json:"host_kernel_seconds"`
	// VirtualSeconds and MTEPS come from the deterministic hardware model
	// and are identical at every worker count.
	VirtualSeconds float64 `json:"virtual_seconds"`
	MTEPS          float64 `json:"mteps"`
	// HostMTEPS is traversed edges over real host-kernel time — the figure
	// that moves with HostWorkers and with algorithmic work reduction
	// (direction-optimizing pull levels scan fewer edges), where virtual
	// MTEPS is dominated by the modeled transfer schedule.
	HostMTEPS float64 `json:"host_mteps"`
	// AllocsPerOp and BytesPerOp are heap allocations per full run.
	AllocsPerOp uint64 `json:"allocs_per_op"`
	BytesPerOp  uint64 `json:"bytes_per_op"`
	Runs        int    `json:"runs"`
}

// multiJobEntry is one concurrent-job sharing measurement: n same-kernel
// jobs with distinct sources served by one wave group (System.RunShared).
type multiJobEntry struct {
	Jobs   int    `json:"jobs"`
	Kernel string `json:"kernel"`
	// AggregateMTEPS is the group's total traversed edges over its virtual
	// makespan — the multi-query throughput figure.
	AggregateMTEPS float64 `json:"aggregate_mteps"`
	// BytesPerJob is the group's host-to-device traffic amortized per
	// member; SoloBytes is one solo run's traffic for comparison.
	BytesPerJob float64 `json:"bytes_per_job"`
	SoloBytes   int64   `json:"solo_bytes"`
	// SharedPageCopies counts member servings satisfied by a page another
	// member paid to stream; BytesSaved the traffic that sharing avoided.
	SharedPageCopies int64 `json:"shared_page_copies"`
	BytesSaved       int64 `json:"bytes_saved"`
	Waves            int64 `json:"waves"`
	// WallSeconds is the mean real time of one full group run.
	WallSeconds float64 `json:"wall_seconds"`
	Runs        int     `json:"runs"`
}

// poolEntry is one eviction-policy x kernel measurement over the shared
// host page pool: storage-backed runs through a pool a quarter of the
// topology, contrasting each policy's hit rate on scan-heavy access
// (PageRank touches every page every iteration) against frontier-sparse
// access (BFS touches only frontier pages per level).
type poolEntry struct {
	Policy string `json:"policy"`
	Kernel string `json:"kernel"`
	// HitRate is pool hits over all pool pins of the last (warm) run;
	// Hits/Loads/Evictions are the pool's lifetime counters after all runs.
	HitRate   float64 `json:"hit_rate"`
	Hits      int64   `json:"hits"`
	Loads     int64   `json:"loads"`
	Evictions int64   `json:"evictions"`
	MTEPS     float64 `json:"mteps"`
	// WallSeconds is the mean real time of one full run.
	WallSeconds float64 `json:"wall_seconds"`
	Runs        int     `json:"runs"`
}

// ingestEntry is the WAL-backed mutation-path measurement: batched edge
// ingest throughput (append + fsync + apply + snapshot publish per batch)
// and the cost of a cold recovery replay of the same history.
type ingestEntry struct {
	Batches       int `json:"batches"`
	EdgesPerBatch int `json:"edges_per_batch"`
	// EdgesPerSecond is committed edge ops over total ingest wall time.
	EdgesPerSecond float64 `json:"edges_per_second"`
	// IngestWallSeconds is the mean wall time of committing the full history;
	// ReplayWallSeconds the mean wall time of reopening it (WAL scan +
	// deterministic re-apply), the crash-recovery cost for this history.
	IngestWallSeconds float64 `json:"ingest_wall_seconds"`
	ReplayWallSeconds float64 `json:"replay_wall_seconds"`
	// WALBytes is the log size the history occupies on disk.
	WALBytes int64 `json:"wal_bytes"`
	Runs     int   `json:"runs"`
}

// incrementalEntry is one algo x batch-size measurement of retained-state
// delta expansion vs a from-scratch recompute of the same algorithm on the
// same post-commit snapshot. Runs stream every page each superstep (device
// cache disabled) so the page-scan counts are the superstep work the two
// paths actually perform; the batch inserts edges in the R-MAT degree tail
// — the small-localized-update case incremental recompute exists for.
// Every incremental run is verified byte-identical to the full run before
// its numbers are recorded.
type incrementalEntry struct {
	Algo          string `json:"algo"`
	EdgesPerBatch int    `json:"edges_per_batch"`
	// Seeds is the delta plan's initial frontier size.
	Seeds int `json:"seeds"`
	// FullPages / IncPages count page-scans (superstep work units) of the
	// from-scratch vs the delta-expansion run; SavedSupersteps is their
	// difference and PageSpeedup the ratio (full over inc, floored at 1
	// page so an empty delta does not divide by zero).
	FullPages       int64   `json:"full_pages"`
	IncPages        int64   `json:"inc_pages"`
	SavedSupersteps int64   `json:"saved_supersteps"`
	PageSpeedup     float64 `json:"page_speedup"`
	// FullWallSeconds / IncWallSeconds are mean real times of one run.
	FullWallSeconds float64 `json:"full_wall_seconds"`
	IncWallSeconds  float64 `json:"inc_wall_seconds"`
	Runs            int     `json:"runs"`
}

// benchReport is the BENCH_<rev>.json document.
type benchReport struct {
	Rev        string       `json:"rev"`
	Date       string       `json:"date"`
	Dataset    string       `json:"dataset"`
	Shrink     int          `json:"shrink"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Entries    []benchEntry `json:"entries"`
	// MultiJob records the concurrent-job sharing measurements (empty when
	// -jobs is 0).
	MultiJob []multiJobEntry `json:"multi_job,omitempty"`
	// Pool records the eviction-policy hit-rate sweep over the shared host
	// page pool (informational: the diff gate does not compare it).
	Pool []poolEntry `json:"pool,omitempty"`
	// Ingest records the WAL-backed mutation path's throughput and recovery
	// replay cost (informational: the diff gate does not compare it).
	Ingest []ingestEntry `json:"ingest,omitempty"`
	// Incremental records the delta-expansion vs from-scratch recompute
	// sweep per batch size (informational: the diff gate does not compare
	// it).
	Incremental []incrementalEntry `json:"incremental,omitempty"`
}

// gitRev resolves the short commit hash, or "dev" outside a git checkout.
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "dev"
	}
	return strings.TrimSpace(string(out))
}

// benchKernels are the kernels the regression record tracks, run through
// the public System API so the measurement covers the same path users hit.
// cfg is the System configuration the measurement runs under (HostWorkers
// is overridden per sweep point).
var benchKernels = []struct {
	name string
	cfg  gts.Config
	run  func(sys *gts.System) (gts.Metrics, error)
}{
	{"BFS", gts.Config{}, func(sys *gts.System) (gts.Metrics, error) {
		res, err := sys.BFS(0)
		if err != nil {
			return gts.Metrics{}, err
		}
		return res.Metrics, nil
	}},
	{"BFS-diropt", gts.Config{DirectionOpt: true}, func(sys *gts.System) (gts.Metrics, error) {
		res, err := sys.BFS(0)
		if err != nil {
			return gts.Metrics{}, err
		}
		return res.Metrics, nil
	}},
	{"PageRank", gts.Config{}, func(sys *gts.System) (gts.Metrics, error) {
		res, err := sys.PageRank(0.85, 5)
		if err != nil {
			return gts.Metrics{}, err
		}
		return res.Metrics, nil
	}},
	{"CC", gts.Config{}, func(sys *gts.System) (gts.Metrics, error) {
		res, err := sys.CC()
		if err != nil {
			return gts.Metrics{}, err
		}
		return res.Metrics, nil
	}},
	{"BC", gts.Config{}, func(sys *gts.System) (gts.Metrics, error) {
		res, err := sys.BC(0)
		if err != nil {
			return gts.Metrics{}, err
		}
		return res.Metrics, nil
	}},
	{"SSSP-delta", gts.Config{DirectionOpt: true}, func(sys *gts.System) (gts.Metrics, error) {
		res, err := sys.SSSP(0)
		if err != nil {
			return gts.Metrics{}, err
		}
		return res.Metrics, nil
	}},
}

// benchWorkerCounts returns the host worker-pool sizes to sweep: the
// serial baseline, the 8-worker point the golden and differential suites
// pin (recorded on every machine so records stay comparable), plus
// GOMAXPROCS when it is a distinct parallel width.
func benchWorkerCounts() []int {
	counts := []int{1, 8}
	if n := runtime.GOMAXPROCS(0); n > 1 && n != 8 {
		counts = append(counts, n)
	}
	return counts
}

// measureKernel runs one kernel `runs` times at the given worker count and
// averages wall-clock, host-kernel time, and per-run heap allocations.
func measureKernel(g *gts.Graph, name string, cfg gts.Config, run func(*gts.System) (gts.Metrics, error), workers, runs int) (benchEntry, error) {
	cfg.HostWorkers = workers
	sys, err := gts.NewSystem(g, cfg)
	if err != nil {
		return benchEntry{}, err
	}
	// Warm up once so pools and caches are populated before measuring.
	if _, err := run(sys); err != nil {
		return benchEntry{}, err
	}
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	var wall, hostKernel time.Duration
	var last gts.Metrics
	for i := 0; i < runs; i++ {
		t0 := time.Now()
		m, err := run(sys)
		if err != nil {
			return benchEntry{}, err
		}
		wall += time.Since(t0)
		hostKernel += m.HostKernelWall
		last = m
	}
	runtime.ReadMemStats(&ms1)
	// Recover the edge count from the deterministic virtual figures, then
	// price it against the mean real host-kernel time.
	hostMTEPS := 0.0
	if hk := hostKernel.Seconds() / float64(runs); hk > 0 {
		edges := last.MTEPS * last.Elapsed.Seconds() // millions of edges
		hostMTEPS = edges / hk
	}
	return benchEntry{
		Kernel:            name,
		Workers:           workers,
		WallSeconds:       wall.Seconds() / float64(runs),
		HostKernelSeconds: hostKernel.Seconds() / float64(runs),
		VirtualSeconds:    last.Elapsed.Seconds(),
		MTEPS:             last.MTEPS,
		HostMTEPS:         hostMTEPS,
		AllocsPerOp:       (ms1.Mallocs - ms0.Mallocs) / uint64(runs),
		BytesPerOp:        (ms1.TotalAlloc - ms0.TotalAlloc) / uint64(runs),
		Runs:              runs,
	}, nil
}

// measureMultiJob runs `jobs` distinct-source BFS jobs as one wave group
// `runs` times and reports the sharing economics: aggregate throughput,
// amortized traffic per member, and the bytes the group avoided streaming.
func measureMultiJob(g *gts.Graph, jobs, runs int) (multiJobEntry, error) {
	sys, err := gts.NewSystem(g, gts.Config{ShareStreams: true})
	if err != nil {
		return multiJobEntry{}, err
	}
	solo, err := sys.BFS(0)
	if err != nil {
		return multiJobEntry{}, err
	}
	nv := g.NumVertices()
	stride := nv / uint64(jobs)
	if stride == 0 {
		stride = 1
	}
	group := func() ([]gts.SharedOutcome, gts.SharedStats, error) {
		sj := make([]gts.SharedJob, jobs)
		for i := range sj {
			sj[i] = gts.SharedJob{Kernel: kernels.NewBFS(g), Source: (uint64(i) * stride) % nv}
		}
		return sys.RunShared(sj, nil)
	}
	// Warm up once so pools and caches are populated before measuring.
	if _, _, err := group(); err != nil {
		return multiJobEntry{}, err
	}
	var wall time.Duration
	var last gts.SharedStats
	for i := 0; i < runs; i++ {
		t0 := time.Now()
		outs, stats, err := group()
		if err != nil {
			return multiJobEntry{}, err
		}
		for j, o := range outs {
			if o.Err != nil {
				return multiJobEntry{}, fmt.Errorf("member %d: %w", j, o.Err)
			}
		}
		wall += time.Since(t0)
		last = stats
	}
	return multiJobEntry{
		Jobs:             jobs,
		Kernel:           "BFS",
		AggregateMTEPS:   last.AggregateMTEPS(),
		BytesPerJob:      last.AmortizedBytesPerJob(),
		SoloBytes:        solo.Metrics.BytesToGPU,
		SharedPageCopies: last.SharedPageCopies,
		BytesSaved:       last.BytesSaved,
		Waves:            last.Waves,
		WallSeconds:      wall.Seconds() / float64(runs),
		Runs:             runs,
	}, nil
}

// poolBenchKernels are the two access patterns the pool sweep contrasts.
var poolBenchKernels = []struct {
	name string
	run  func(sys *gts.System) (gts.Metrics, error)
}{
	{"BFS", func(sys *gts.System) (gts.Metrics, error) {
		res, err := sys.BFS(0)
		if err != nil {
			return gts.Metrics{}, err
		}
		return res.Metrics, nil
	}},
	{"PageRank", func(sys *gts.System) (gts.Metrics, error) {
		res, err := sys.PageRank(0.85, 5)
		if err != nil {
			return gts.Metrics{}, err
		}
		return res.Metrics, nil
	}},
}

// measurePool runs one kernel `runs` times over a fresh quarter-topology
// host pool under the given eviction policy and reports the warm hit rate.
// The device page cache is disabled so every superstep's page touches
// reach the host pool — with it on, the GPU cache absorbs all intra-run
// reuse and every policy degenerates to first-touch loads.
func measurePool(g *gts.Graph, policy, name string, run func(*gts.System) (gts.Metrics, error), runs int) (poolEntry, error) {
	cfg := gts.Config{
		Storage: gts.SSDs, Devices: 1, CacheBytes: gts.CacheDisabled,
		PoolPolicy: policy, PoolBytes: g.TopologyBytes() / 4,
	}
	pool, err := gts.NewHostPool(g, cfg)
	if err != nil {
		return poolEntry{}, err
	}
	cfg.HostPool = pool
	sys, err := gts.NewSystem(g, cfg)
	if err != nil {
		return poolEntry{}, err
	}
	// Warm up once so the pool holds its steady-state working set.
	if _, err := run(sys); err != nil {
		return poolEntry{}, err
	}
	var wall time.Duration
	var last gts.Metrics
	for i := 0; i < runs; i++ {
		t0 := time.Now()
		m, err := run(sys)
		if err != nil {
			return poolEntry{}, err
		}
		wall += time.Since(t0)
		last = m
	}
	hitRate := 0.0
	if pins := last.PoolHits + last.PoolLoads + last.PoolWaits; pins > 0 {
		hitRate = float64(last.PoolHits) / float64(pins)
	}
	st := pool.Stats()
	return poolEntry{
		Policy:      policy,
		Kernel:      name,
		HitRate:     hitRate,
		Hits:        st.Hits,
		Loads:       st.Loads,
		Evictions:   st.Evictions,
		MTEPS:       last.MTEPS,
		WallSeconds: wall.Seconds() / float64(runs),
		Runs:        runs,
	}, nil
}

// measureIngest commits a deterministic random history of batches×edges
// mutations through the WAL-backed ingest path `runs` times (fresh WAL per
// run), then measures a cold reopen of the final history — the recovery
// replay a crashed server would pay.
func measureIngest(spec string, nv uint64, batches, edgesPerBatch, runs int) (ingestEntry, error) {
	dir, err := os.MkdirTemp("", "gtsbench-wal-*")
	if err != nil {
		return ingestEntry{}, err
	}
	defer os.RemoveAll(dir)
	rng := rand.New(rand.NewSource(42))
	history := make([][]gts.EdgeOp, batches)
	for i := range history {
		ops := make([]gts.EdgeOp, edgesPerBatch)
		for j := range ops {
			ops[j] = gts.EdgeOp{Src: uint64(rng.Int63n(int64(nv))), Dst: uint64(rng.Int63n(int64(nv)))}
		}
		history[i] = ops
	}
	var ingestWall, replayWall time.Duration
	var walBytes int64
	for r := 0; r < runs; r++ {
		walPath := filepath.Join(dir, fmt.Sprintf("run%d.wal", r))
		m, err := gts.OpenMutable(spec, walPath, gts.MutableOptions{})
		if err != nil {
			return ingestEntry{}, err
		}
		t0 := time.Now()
		for i, ops := range history {
			if _, err := m.Ingest(ops); err != nil {
				m.Close()
				return ingestEntry{}, fmt.Errorf("batch %d: %w", i, err)
			}
		}
		ingestWall += time.Since(t0)
		walBytes = m.WALStats().AppendedBytes
		if err := m.Close(); err != nil {
			return ingestEntry{}, err
		}
		t0 = time.Now()
		reopened, err := gts.OpenMutable(spec, walPath, gts.MutableOptions{})
		if err != nil {
			return ingestEntry{}, fmt.Errorf("recovery reopen: %w", err)
		}
		replayWall += time.Since(t0)
		if reopened.ReplayedBatches() != batches {
			reopened.Close()
			return ingestEntry{}, fmt.Errorf("replay recovered %d/%d batches", reopened.ReplayedBatches(), batches)
		}
		reopened.Close()
	}
	meanIngest := ingestWall.Seconds() / float64(runs)
	eps := 0.0
	if meanIngest > 0 {
		eps = float64(batches*edgesPerBatch) / meanIngest
	}
	return ingestEntry{
		Batches:           batches,
		EdgesPerBatch:     edgesPerBatch,
		EdgesPerSecond:    eps,
		IngestWallSeconds: meanIngest,
		ReplayWallSeconds: replayWall.Seconds() / float64(runs),
		WALBytes:          walBytes,
		Runs:              runs,
	}, nil
}

// incPeripheralBatch builds an insert-only batch in the R-MAT degree tail:
// high vertex IDs are the low-degree periphery, so the inserted edges
// deviate only a few pages and leave the hub pages untouched.
func incPeripheralBatch(nv uint64, n int) []gts.EdgeOp {
	ops := make([]gts.EdgeOp, n)
	for i := range ops {
		ops[i] = gts.EdgeOp{Src: nv - 2 - uint64(2*i), Dst: nv - 1 - uint64(2*i)}
	}
	return ops
}

// measureIncremental captures retained state from a full streaming run,
// commits one peripheral batch, and prices the delta-expansion run against
// a from-scratch recompute on the post-commit snapshot. The incremental
// result must be byte-identical to the full one or the measurement fails.
func measureIncremental(g *gts.Graph, algo string, edgesPerBatch, runs int) (incrementalEntry, error) {
	const damping = 0.85
	const prIters = 10
	cfg := gts.Config{CacheBytes: gts.CacheDisabled}
	sys, err := gts.NewSystem(g, cfg)
	if err != nil {
		return incrementalEntry{}, err
	}
	st := incremental.NewStore(0)
	switch algo {
	case "bfs":
		res, err := sys.BFS(0)
		if err != nil {
			return incrementalEntry{}, err
		}
		st.Capture("bfs", &incremental.Entry{
			Kind: incremental.KindBFS, Epoch: 0, Source: 0,
			Levels: res.Levels, FullPages: res.Metrics.PagesStreamed,
		})
	case "cc":
		res, err := sys.CC()
		if err != nil {
			return incrementalEntry{}, err
		}
		st.Capture("cc", &incremental.Entry{
			Kind: incremental.KindCC, Epoch: 0,
			Labels: res.Labels, FullPages: res.Metrics.PagesStreamed,
		})
	case "pagerank":
		rec := incremental.NewRecordingPageRank(g, damping, prIters)
		_, m, err := sys.RunKernel(rec, 0)
		if err != nil {
			return incrementalEntry{}, err
		}
		st.Capture("pagerank", &incremental.Entry{
			Kind: incremental.KindPageRank, Epoch: 0,
			Traj: rec.Traj, Damping: damping, Iterations: prIters,
			FullPages: m.PagesStreamed,
		})
	default:
		return incrementalEntry{}, fmt.Errorf("unknown algo %q", algo)
	}

	batch := incPeripheralBatch(g.NumVertices(), edgesPerBatch)
	g2, err := slottedpage.NewMutable(g).ApplyBatch(batch)
	if err != nil {
		return incrementalEntry{}, err
	}
	st.Commit(0, 1, batch, g)
	prior, delta, ok := st.Lookup(algo)
	if !ok {
		return incrementalEntry{}, fmt.Errorf("%s: retained entry not replayable", algo)
	}
	sys2, err := gts.NewSystem(g2, cfg)
	if err != nil {
		return incrementalEntry{}, err
	}

	// From-scratch recompute on the post-commit snapshot.
	var fullWall time.Duration
	var fullM gts.Metrics
	var fullLevels []int16
	var fullLabels []uint32
	var fullRanks []float32
	for i := 0; i < runs; i++ {
		t0 := time.Now()
		switch algo {
		case "bfs":
			res, err := sys2.BFS(0)
			if err != nil {
				return incrementalEntry{}, err
			}
			fullM, fullLevels = res.Metrics, res.Levels
		case "cc":
			res, err := sys2.CC()
			if err != nil {
				return incrementalEntry{}, err
			}
			fullM, fullLabels = res.Metrics, res.Labels
		case "pagerank":
			res, err := sys2.PageRank(damping, prIters)
			if err != nil {
				return incrementalEntry{}, err
			}
			fullM, fullRanks = res.Metrics, res.Ranks
		}
		fullWall += time.Since(t0)
	}

	// Delta-expansion run, re-planned fresh each time (kernels hold run
	// state), verified byte-identical to the from-scratch result.
	var incWall time.Duration
	var incM gts.Metrics
	seeds := 0
	for i := 0; i < runs; i++ {
		t0 := time.Now()
		switch algo {
		case "bfs":
			k, reason := incremental.PlanBFS(g2, prior, delta)
			if reason != "" {
				return incrementalEntry{}, fmt.Errorf("bfs fell back: %s", reason)
			}
			out, m, err := sys2.RunKernel(k, 0)
			if err != nil {
				return incrementalEntry{}, err
			}
			incM, seeds = m, k.Seeds
			for v, lv := range k.Levels(out) {
				if lv != fullLevels[v] {
					return incrementalEntry{}, fmt.Errorf("bfs: incremental level diverges at vertex %d", v)
				}
			}
		case "cc":
			k, reason := incremental.PlanCC(g2, prior, delta)
			if reason != "" {
				return incrementalEntry{}, fmt.Errorf("cc fell back: %s", reason)
			}
			out, m, err := sys2.RunKernel(k, 0)
			if err != nil {
				return incrementalEntry{}, err
			}
			incM, seeds = m, k.Seeds
			for v, lb := range k.Components(out) {
				if lb != fullLabels[v] {
					return incrementalEntry{}, fmt.Errorf("cc: incremental label diverges at vertex %d", v)
				}
			}
		case "pagerank":
			k, reason := incremental.PlanPageRank(g2, prior, delta, damping, prIters)
			if reason != "" {
				return incrementalEntry{}, fmt.Errorf("pagerank fell back: %s", reason)
			}
			out, m, err := sys2.RunKernel(k, 0)
			if err != nil {
				return incrementalEntry{}, err
			}
			incM, seeds = m, k.Seeds
			for v, r := range k.Ranks(out) {
				if math.Float32bits(r) != math.Float32bits(fullRanks[v]) {
					return incrementalEntry{}, fmt.Errorf("pagerank: incremental rank diverges at vertex %d", v)
				}
			}
		}
		incWall += time.Since(t0)
	}

	incPages := incM.PagesStreamed
	if incPages < 1 {
		incPages = 1
	}
	return incrementalEntry{
		Algo:            algo,
		EdgesPerBatch:   edgesPerBatch,
		Seeds:           seeds,
		FullPages:       fullM.PagesStreamed,
		IncPages:        incM.PagesStreamed,
		SavedSupersteps: fullM.PagesStreamed - incM.PagesStreamed,
		PageSpeedup:     float64(fullM.PagesStreamed) / float64(incPages),
		FullWallSeconds: fullWall.Seconds() / float64(runs),
		IncWallSeconds:  incWall.Seconds() / float64(runs),
		Runs:            runs,
	}, nil
}

// runBenchJSON executes the regression suite and writes BENCH_<rev>.json
// into outDir, returning the path written. jobs > 1 additionally records
// the concurrent-job sharing measurement.
func runBenchJSON(dataset string, shrink, runs, jobs int, outDir string) (string, error) {
	g, err := gts.Generate(dataset, shrink)
	if err != nil {
		return "", err
	}
	rep := benchReport{
		Rev:        gitRev(),
		Date:       time.Now().UTC().Format(time.RFC3339),
		Dataset:    dataset,
		Shrink:     shrink,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, bk := range benchKernels {
		for _, workers := range benchWorkerCounts() {
			e, err := measureKernel(g, bk.name, bk.cfg, bk.run, workers, runs)
			if err != nil {
				return "", fmt.Errorf("%s workers=%d: %w", bk.name, workers, err)
			}
			rep.Entries = append(rep.Entries, e)
		}
	}
	if jobs > 1 {
		e, err := measureMultiJob(g, jobs, runs)
		if err != nil {
			return "", fmt.Errorf("multi-job jobs=%d: %w", jobs, err)
		}
		rep.MultiJob = append(rep.MultiJob, e)
	}
	for _, policy := range gts.PoolPolicies() {
		for _, pk := range poolBenchKernels {
			e, err := measurePool(g, policy, pk.name, pk.run, runs)
			if err != nil {
				return "", fmt.Errorf("pool policy=%s kernel=%s: %w", policy, pk.name, err)
			}
			rep.Pool = append(rep.Pool, e)
		}
	}
	{
		spec := fmt.Sprintf("%s@%d", dataset, shrink)
		e, err := measureIngest(spec, g.NumVertices(), 32, 128, runs)
		if err != nil {
			return "", fmt.Errorf("ingest: %w", err)
		}
		rep.Ingest = append(rep.Ingest, e)
	}
	for _, algo := range []string{"bfs", "cc", "pagerank"} {
		for _, b := range []int{1, 8, 64} {
			e, err := measureIncremental(g, algo, b, runs)
			if err != nil {
				return "", fmt.Errorf("incremental %s batch=%d: %w", algo, b, err)
			}
			rep.Incremental = append(rep.Incremental, e)
		}
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(outDir, "BENCH_"+rep.Rev+".json")
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
