package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// diffRatio is the regression gate: a kernel (or multi-job group) fails
// the diff when its MTEPS drops below this fraction of the baseline's.
const diffRatio = 0.9

// readReport parses one BENCH_<rev>.json file.
func readReport(path string) (benchReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return benchReport{}, err
	}
	var rep benchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return benchReport{}, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// compareReports checks every (kernel, workers) entry and every
// (kernel, jobs) multi-job entry of cur against base, returning one problem
// string per MTEPS figure that fell below ratio x baseline. Entries without
// a baseline counterpart (new kernels, new sweep points) pass silently.
func compareReports(cur, base benchReport, ratio float64) []string {
	var problems []string
	baseline := make(map[string]float64, len(base.Entries))
	for _, e := range base.Entries {
		baseline[fmt.Sprintf("%s/workers=%d", e.Kernel, e.Workers)] = e.MTEPS
	}
	for _, e := range cur.Entries {
		key := fmt.Sprintf("%s/workers=%d", e.Kernel, e.Workers)
		if b, ok := baseline[key]; ok && b > 0 && e.MTEPS < b*ratio {
			problems = append(problems, fmt.Sprintf("%s: MTEPS %.2f < %.0f%% of baseline %.2f",
				key, e.MTEPS, ratio*100, b))
		}
	}
	multiBase := make(map[string]float64, len(base.MultiJob))
	for _, e := range base.MultiJob {
		multiBase[fmt.Sprintf("%s/jobs=%d", e.Kernel, e.Jobs)] = e.AggregateMTEPS
	}
	for _, e := range cur.MultiJob {
		key := fmt.Sprintf("%s/jobs=%d", e.Kernel, e.Jobs)
		if b, ok := multiBase[key]; ok && b > 0 && e.AggregateMTEPS < b*ratio {
			problems = append(problems, fmt.Sprintf("%s: aggregate MTEPS %.2f < %.0f%% of baseline %.2f",
				key, e.AggregateMTEPS, ratio*100, b))
		}
	}
	return problems
}

// findBaseline picks the most recent BENCH_*.json in dir (by its recorded
// date) that matches cur's dataset and shrink and is not cur itself.
func findBaseline(dir string, cur benchReport, curPath string) (benchReport, string, bool) {
	matches, _ := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	var best benchReport
	bestPath := ""
	for _, p := range matches {
		if filepath.Clean(p) == filepath.Clean(curPath) {
			continue
		}
		rep, err := readReport(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gtsbench: skipping unreadable record %s: %v\n", p, err)
			continue
		}
		if rep.Dataset != cur.Dataset || rep.Shrink != cur.Shrink {
			continue
		}
		if bestPath == "" || rep.Date > best.Date { // RFC3339 sorts lexically
			best, bestPath = rep, p
		}
	}
	return best, bestPath, bestPath != ""
}

// runDiff compares this revision's BENCH_<rev>.json against the previous
// revision's record and fails on >10% MTEPS regressions. Blessing a known,
// intentional change: set GTSBENCH_BLESS=1 (the diff then only warns), land
// the new BENCH_<rev>.json, and the next revision diffs against it.
func runDiff(dir string) error {
	rev := gitRev()
	curPath := filepath.Join(dir, "BENCH_"+rev+".json")
	cur, err := readReport(curPath)
	if err != nil {
		return fmt.Errorf("no current record for rev %s (run `make bench-smoke` first): %w", rev, err)
	}
	base, basePath, ok := findBaseline(dir, cur, curPath)
	if !ok {
		fmt.Printf("gtsbench: no baseline record matches %s (dataset %s, shrink %d) — nothing to diff\n",
			curPath, cur.Dataset, cur.Shrink)
		return nil
	}
	problems := compareReports(cur, base, diffRatio)
	if len(problems) == 0 {
		fmt.Printf("gtsbench: %s vs %s — no MTEPS regressions (%d kernel entries, %d multi-job entries)\n",
			curPath, basePath, len(cur.Entries), len(cur.MultiJob))
		return nil
	}
	for _, p := range problems {
		fmt.Fprintf(os.Stderr, "gtsbench: REGRESSION %s\n", p)
	}
	if os.Getenv("GTSBENCH_BLESS") == "1" {
		fmt.Printf("gtsbench: %d regressions vs %s blessed via GTSBENCH_BLESS=1 — commit %s as the new baseline\n",
			len(problems), basePath, curPath)
		return nil
	}
	return fmt.Errorf("%d MTEPS regressions vs %s (intentional? rerun with GTSBENCH_BLESS=1 and commit the new record)",
		len(problems), basePath)
}
