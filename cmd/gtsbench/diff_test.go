package main

import (
	"strings"
	"testing"
)

func report(entries []benchEntry, multi []multiJobEntry) benchReport {
	return benchReport{Rev: "r", Dataset: "RMAT27", Shrink: 16, Entries: entries, MultiJob: multi}
}

// TestCompareReports pins the regression gate: within-tolerance drift
// passes, >10% MTEPS drops fail, and entries without a baseline
// counterpart are ignored.
func TestCompareReports(t *testing.T) {
	base := report(
		[]benchEntry{
			{Kernel: "BFS", Workers: 1, MTEPS: 100},
			{Kernel: "PageRank", Workers: 1, MTEPS: 200},
		},
		[]multiJobEntry{{Kernel: "BFS", Jobs: 8, AggregateMTEPS: 500}},
	)

	// Identical numbers: clean.
	if p := compareReports(base, base, diffRatio); len(p) != 0 {
		t.Errorf("self-diff found problems: %v", p)
	}

	// 5% slower is within the 10% tolerance.
	ok := report(
		[]benchEntry{
			{Kernel: "BFS", Workers: 1, MTEPS: 95},
			{Kernel: "PageRank", Workers: 1, MTEPS: 195},
		},
		[]multiJobEntry{{Kernel: "BFS", Jobs: 8, AggregateMTEPS: 475}},
	)
	if p := compareReports(ok, base, diffRatio); len(p) != 0 {
		t.Errorf("5%% drift flagged: %v", p)
	}

	// One kernel 20% down and the multi-job figure 50% down: two problems.
	bad := report(
		[]benchEntry{
			{Kernel: "BFS", Workers: 1, MTEPS: 80},
			{Kernel: "PageRank", Workers: 1, MTEPS: 200},
		},
		[]multiJobEntry{{Kernel: "BFS", Jobs: 8, AggregateMTEPS: 250}},
	)
	p := compareReports(bad, base, diffRatio)
	if len(p) != 2 {
		t.Fatalf("problems = %v, want 2", p)
	}
	if !strings.Contains(p[0], "BFS/workers=1") {
		t.Errorf("first problem %q does not name BFS/workers=1", p[0])
	}
	if !strings.Contains(p[1], "BFS/jobs=8") {
		t.Errorf("second problem %q does not name BFS/jobs=8", p[1])
	}

	// Entries the baseline lacks (new sweep point, new multi-job shape)
	// pass without a counterpart.
	novel := report(
		[]benchEntry{{Kernel: "BFS", Workers: 16, MTEPS: 1}},
		[]multiJobEntry{{Kernel: "BFS", Jobs: 32, AggregateMTEPS: 1}},
	)
	if p := compareReports(novel, base, diffRatio); len(p) != 0 {
		t.Errorf("novel entries flagged: %v", p)
	}
}
