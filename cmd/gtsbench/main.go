// Command gtsbench regenerates the paper's tables and figures over the
// scaled-down proxy datasets.
//
// Usage:
//
//	gtsbench -exp all                 # every experiment, paper order
//	gtsbench -exp fig6 -shrink 13     # one experiment at a given scale
//	gtsbench -exp fig9 -csv out/      # also write CSV files
//	gtsbench -json -shrink 16         # write BENCH_<rev>.json regression record
//	gtsbench -json -shrink 16 -jobs 32  # ... with a 32-job sharing measurement
//	gtsbench -diff                    # fail on >10% MTEPS regression vs baseline
//	gtsbench -trace out.json          # one traced BFS run -> Chrome trace JSON
//	gtsbench -trace pr.jsonl -trace-algo pagerank
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment ID or 'all' ("+strings.Join(experiments.IDs(), ", ")+")")
	shrink := flag.Int("shrink", 13, "dataset down-scaling as a power of two")
	iters := flag.Int("iters", 10, "PageRank iterations (paper: 10)")
	csvDir := flag.String("csv", "", "directory to additionally write per-experiment CSV files to")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonMode := flag.Bool("json", false, "run the per-kernel regression suite and write BENCH_<rev>.json instead of experiments")
	benchDataset := flag.String("bench-dataset", "RMAT27", "dataset for -json mode")
	benchRuns := flag.Int("bench-runs", 3, "measured runs per kernel in -json mode")
	benchOut := flag.String("bench-out", ".", "directory BENCH_<rev>.json is written to")
	benchJobs := flag.Int("jobs", 8, "concurrent distinct-source BFS jobs for -json's wave-group sharing record (0 disables)")
	diffMode := flag.Bool("diff", false, "compare this revision's BENCH_<rev>.json against the previous record and fail on >10% MTEPS regressions (GTSBENCH_BLESS=1 downgrades to warnings)")
	traceOut := flag.String("trace", "", "write one traced run to this file (Chrome trace JSON, or JSONL if it ends in .jsonl) and exit")
	traceAlgo := flag.String("trace-algo", "bfs", "algorithm for -trace ("+strings.Join(traceAlgoNames, ", ")+")")
	traceWorkers := flag.Int("trace-workers", 0, "host workers for -trace (0 = GOMAXPROCS; the trace is byte-identical at every setting)")
	flag.Parse()

	if *traceOut != "" {
		if err := runTrace(*benchDataset, *shrink, *traceAlgo, *iters, *traceWorkers, *traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "gtsbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *diffMode {
		if err := runDiff(*benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "gtsbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *jsonMode {
		path, err := runBenchJSON(*benchDataset, *shrink, *benchRuns, *benchJobs, *benchOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gtsbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("gtsbench: wrote %s\n", path)
		return
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-10s %s\n", id, experiments.Describe(id))
		}
		return
	}

	r := experiments.New(experiments.Options{Shrink: *shrink, PRIterations: *iters})
	ids := experiments.IDs()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		tab, err := r.Run(strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintf(os.Stderr, "gtsbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		if err := tab.Write(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "gtsbench: %v\n", err)
			os.Exit(1)
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "gtsbench: %v\n", err)
				os.Exit(1)
			}
			f, err := os.Create(filepath.Join(*csvDir, tab.ID+".csv"))
			if err != nil {
				fmt.Fprintf(os.Stderr, "gtsbench: %v\n", err)
				os.Exit(1)
			}
			if err := tab.WriteCSV(f); err != nil {
				f.Close()
				fmt.Fprintf(os.Stderr, "gtsbench: %v\n", err)
				os.Exit(1)
			}
			f.Close()
		}
	}
}
