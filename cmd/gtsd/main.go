// Command gtsd serves GTS graph analytics over HTTP: it pre-loads named
// slotted-page graphs, pools engines per graph, and answers concurrent
// algorithm requests through internal/service's bounded queue, worker
// pool, and result cache.
//
// Usage:
//
//	gtsd -listen :8090 -load social=Twitter@12 -load web=UK2007@12
//	gtsd -listen :8090 -load big=rmat30.gts -pool 8 -workers 8 -gpus 2
//	gtsd -listen :8090 -load big=rmat30.gts -storage ssd -pool-policy 2q -pool-bytes 268435456
//	gtsd -listen :8090 -load social=Twitter@12 -pprof -trace-jobs 16
//
//	curl -X POST localhost:8090/v1/graphs/social/pagerank -d '{"iterations":10}'
//	curl -X POST 'localhost:8090/v1/graphs/web/bfs?mode=async' -d '{"source":0}'
//	curl localhost:8090/v1/jobs/job-000002
//	curl localhost:8090/metrics
//
// Graphs can also be loaded at runtime:
//
//	curl -X PUT localhost:8090/v1/graphs/rmat -d '{"spec":"RMAT27@12","pool":4}'
//
// On SIGINT/SIGTERM the daemon stops admitting work, drains queued and
// in-flight jobs (bounded by -draintimeout), and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	gts "repro"
	"repro/internal/service"
)

// loadFlags collects repeated -load name=spec arguments.
type loadFlags []string

func (l *loadFlags) String() string { return strings.Join(*l, ",") }
func (l *loadFlags) Set(s string) error {
	*l = append(*l, s)
	return nil
}

func main() {
	var loads loadFlags
	flag.Var(&loads, "load", "graph to pre-load as name=spec (spec: file.gts or dataset[@shrink]); repeatable")
	listen := flag.String("listen", ":8090", "HTTP listen address")
	workers := flag.Int("workers", 4, "concurrent job executors")
	queue := flag.Int("queue", 64, "admission queue depth (full queue returns 429)")
	pool := flag.Int("pool", 4, "engines per graph")
	cache := flag.Int("cache", 256, "result-cache entries (negative disables)")
	timeout := flag.Duration("timeout", 0, "default per-job deadline (0 = none)")
	drainTimeout := flag.Duration("draintimeout", 30*time.Second, "max wait for in-flight jobs on shutdown")
	gpus := flag.Int("gpus", 1, "GPUs per pooled engine")
	streams := flag.Int("streams", 0, "GPU streams per engine (0 = default 32)")
	hostWorkers := flag.Int("host-workers", 0, "host goroutines executing kernel work per run (0 = GOMAXPROCS, 1 = serial; results identical at every setting)")
	strategy := flag.String("strategy", "p", "multi-GPU strategy: p (performance) | s (scalability)")
	shareStreams := flag.Bool("share-streams", false, "coalesce concurrent jobs per graph into shared topology stream wave groups (results identical to solo runs)")
	directionOpt := flag.Bool("direction-opt", false, "serve bfs/sssp with the direction-optimizing frontier kernels (push/pull BFS, delta-stepping SSSP; result values identical to the plain kernels)")
	storage := flag.String("storage", "mem", "graph placement: mem (all in main memory) | ssd | hdd (stream pages from simulated storage)")
	poolBytes := flag.Int64("pool-bytes", 0, "shared host page-pool budget per graph in bytes — one pinned buffer ALL of a graph's engines stream through, so hot pages occupy host memory once however many jobs run (0 with -pool-policy set = 20% of the topology; 0 alone = classic private buffer per run; needs -storage ssd|hdd)")
	poolPolicy := flag.String("pool-policy", "", "host page-pool eviction policy: lru | clock | 2q (setting it opts into the shared pool)")
	poolSeed := flag.Int64("pool-seed", 0, "host page-pool eviction tiebreak seed (replayable)")
	faultSeed := flag.Int64("fault-seed", 0, "fault-injection seed (chaos testing; replayable)")
	faultTransfer := flag.Float64("fault-transfer", 0, "probability of a PCI-E transfer error per DMA [0,1]")
	faultStall := flag.Float64("fault-stall", 0, "probability of a PCI-E transfer stall per DMA [0,1]")
	faultStorage := flag.Float64("fault-storage", 0, "probability of a storage read error per page [0,1]")
	faultCorrupt := flag.Float64("fault-corrupt", 0, "probability of page corruption per storage read [0,1]")
	faultOOM := flag.Int64("fault-oom", 0, "kernel-launch ordinal that fails with device OOM (0 = never)")
	walDir := flag.String("wal-dir", "", "directory for per-graph write-ahead logs; when set, every -load graph becomes mutable: its WAL at <wal-dir>/<name>.wal is replayed on startup (crash recovery) and POST /v1/graphs/{name}/ingest commits edge mutations")
	incrementalFlag := flag.Bool("incremental", false, "retain completed bfs/cc/pagerank state on mutable graphs and serve `incremental: true` requests by delta-expansion across ingest epochs (results byte-identical to full recompute; unsafe deltas fall back automatically)")
	pprofFlag := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ (exposes stacks and heap contents)")
	traceJobs := flag.Int("trace-jobs", 0, "retain Chrome trace JSON for the N most recent computed jobs at /debug/trace/{id} (0 = off)")
	flag.Parse()

	engineCfg := gts.Config{
		GPUs: *gpus, Streams: *streams, HostWorkers: *hostWorkers, ShareStreams: *shareStreams,
		DirectionOpt: *directionOpt,
		PoolBytes:    *poolBytes, PoolPolicy: *poolPolicy, PoolSeed: *poolSeed,
	}
	if strings.EqualFold(*strategy, "s") {
		engineCfg.Strategy = gts.StrategyS
	}
	switch strings.ToLower(*storage) {
	case "", "mem", "memory":
	case "ssd", "ssds":
		engineCfg.Storage = gts.SSDs
	case "hdd", "hdds":
		engineCfg.Storage = gts.HDDs
	default:
		log.Fatalf("gtsd: bad -storage %q (want mem, ssd, or hdd)", *storage)
	}
	if engineCfg.Storage != gts.InMemory && (engineCfg.PoolBytes > 0 || engineCfg.PoolPolicy != "") {
		policy := engineCfg.PoolPolicy
		if policy == "" {
			policy = "lru"
		}
		log.Printf("gtsd: shared host page pool enabled (policy %s) — each graph's hot pages buffer in host memory once, shared by its whole engine pool", policy)
	} else if engineCfg.PoolBytes > 0 || engineCfg.PoolPolicy != "" {
		log.Printf("gtsd: ignoring -pool-bytes/-pool-policy: graphs are in-memory (set -storage ssd or hdd)")
	}
	plan := gts.FaultPlan{
		Seed:              *faultSeed,
		TransferErrorRate: *faultTransfer,
		TransferStallRate: *faultStall,
		StorageErrorRate:  *faultStorage,
		CorruptionRate:    *faultCorrupt,
	}
	if *faultOOM > 0 {
		plan.OOMKernelLaunches = []int64{*faultOOM}
	}
	if plan.Enabled() {
		engineCfg.Faults = &plan
		log.Printf("gtsd: fault injection armed (seed %d)", plan.Seed)
	}
	if *shareStreams {
		log.Printf("gtsd: multi-query topology stream sharing enabled")
	}
	if *directionOpt {
		log.Printf("gtsd: direction-optimizing frontier kernels enabled for bfs/sssp")
	}

	if *incrementalFlag {
		if *walDir == "" {
			log.Printf("gtsd: ignoring -incremental: graphs are immutable (set -wal-dir to make -load graphs mutable)")
		} else {
			log.Printf("gtsd: incremental recompute enabled — retained epoch state serves delta-expansion queries")
		}
	}
	srv := service.New(service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cache,
		DefaultTimeout: *timeout,
		TraceJobs:      *traceJobs,
		Incremental:    *incrementalFlag,
	})
	if *walDir != "" {
		if err := os.MkdirAll(*walDir, 0o755); err != nil {
			log.Fatalf("gtsd: creating -wal-dir: %v", err)
		}
	}
	for _, l := range loads {
		name, spec, ok := strings.Cut(l, "=")
		if !ok {
			log.Fatalf("gtsd: bad -load %q (want name=spec)", l)
		}
		start := time.Now()
		if *walDir != "" {
			walPath := filepath.Join(*walDir, name+".wal")
			if err := srv.LoadMutableGraph(name, spec, walPath, engineCfg, *pool); err != nil {
				log.Fatalf("gtsd: loading %s: %v", l, err)
			}
		} else if err := srv.LoadGraph(name, spec, engineCfg, *pool); err != nil {
			log.Fatalf("gtsd: loading %s: %v", l, err)
		}
		for _, info := range srv.Graphs() {
			if info.Name == name {
				log.Printf("gtsd: loaded %s from %s: %d vertices, %d edges, pool of %d engines (%v)",
					name, spec, info.Vertices, info.Edges, info.Pool, time.Since(start).Round(time.Millisecond))
			}
		}
		for _, h := range srv.Health() {
			if h.Name == name && h.Mutable && h.ReplayedBatches > 0 {
				log.Printf("gtsd: %s: replayed %d committed WAL batches (epoch %d)", name, h.ReplayedBatches, h.Epoch)
			}
		}
	}

	handler := srv.Handler()
	if *pprofFlag {
		handler = service.WithPprof(handler)
		log.Printf("gtsd: pprof enabled on /debug/pprof/")
	}
	httpSrv := &http.Server{Addr: *listen, Handler: handler}
	errc := make(chan error, 1)
	go func() {
		log.Printf("gtsd: serving %d graphs, %d algorithms on %s", len(srv.Graphs()), len(service.Algorithms()), *listen)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("gtsd: %v — draining (up to %v)", sig, *drainTimeout)
	case err := <-errc:
		log.Fatalf("gtsd: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop accepting HTTP first, then drain the job queue.
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("gtsd: http shutdown: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatalf("gtsd: %v", err)
	}
	st := srv.Stats()
	fmt.Printf("gtsd: drained cleanly — %d jobs completed, %d rejected, %d timed out, cache hit rate %.0f%%\n",
		st.Completed, st.Rejected, st.TimedOut, 100*st.CacheHitRate())
}
