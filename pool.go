package gts

import (
	"context"
	"fmt"
)

// SystemPool is a fixed-size pool of Systems over one graph and one
// configuration, for callers that want concurrent algorithm runs. A single
// System serializes its runs (see the System type comment); a pool of N
// Systems runs up to N algorithms in parallel against the shared immutable
// Graph. The service layer (internal/service) keeps one pool per loaded
// graph.
//
// All pooled Systems share the pool's Config, including Config.Trace: pass
// a recorder only if it is safe for concurrent use (trace.Recorder is).
type SystemPool struct {
	graph *Graph
	cfg   Config
	free  chan *System
	size  int
}

// NewSystemPool builds size Systems over g with cfg. size <= 0 defaults
// to 4. The configuration is validated once, the same way NewSystem does.
// A Config that opts into the shared host pool (PoolBytes/PoolPolicy)
// gets ONE BufferPool built up front and shared by every pooled System:
// however many Systems run concurrently, the graph's hot pages occupy
// host memory once.
func NewSystemPool(g *Graph, cfg Config, size int) (*SystemPool, error) {
	if size <= 0 {
		size = 4
	}
	if cfg.Storage != InMemory && cfg.HostPool == nil && cfg.wantsPool() {
		pool, err := NewHostPool(g, cfg)
		if err != nil {
			return nil, err
		}
		cfg.HostPool = pool
	}
	p := &SystemPool{graph: g, cfg: cfg, free: make(chan *System, size), size: size}
	for i := 0; i < size; i++ {
		sys, err := NewSystem(g, cfg)
		if err != nil {
			return nil, fmt.Errorf("gts: building pooled system %d/%d: %w", i+1, size, err)
		}
		p.free <- sys
	}
	return p, nil
}

// Graph returns the pooled graph.
func (p *SystemPool) Graph() *Graph { return p.graph }

// Config returns the pooled configuration.
func (p *SystemPool) Config() Config { return p.cfg }

// Size returns the number of Systems in the pool.
func (p *SystemPool) Size() int { return p.size }

// HostPool returns the BufferPool every pooled System shares, or nil when
// the configuration did not opt into pooling.
func (p *SystemPool) HostPool() *BufferPool { return p.cfg.HostPool }

// Idle returns how many Systems are currently unclaimed. It is inherently
// racy and meant for metrics/introspection only.
func (p *SystemPool) Idle() int { return len(p.free) }

// Acquire claims a System, blocking until one is free or ctx is done.
// Every successful Acquire must be paired with Release.
func (p *SystemPool) Acquire(ctx context.Context) (*System, error) {
	select {
	case sys := <-p.free:
		return sys, nil
	default:
	}
	select {
	case sys := <-p.free:
		return sys, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// TryAcquire claims a System without blocking; ok reports success.
func (p *SystemPool) TryAcquire() (sys *System, ok bool) {
	select {
	case sys := <-p.free:
		return sys, true
	default:
		return nil, false
	}
}

// Release returns a System claimed by Acquire or TryAcquire to the pool.
func (p *SystemPool) Release(sys *System) {
	if sys == nil {
		return
	}
	select {
	case p.free <- sys:
	default:
		panic("gts: SystemPool.Release without matching Acquire")
	}
}

// Do runs f with a pooled System, handling Acquire/Release around it.
func (p *SystemPool) Do(ctx context.Context, f func(*System) error) error {
	sys, err := p.Acquire(ctx)
	if err != nil {
		return err
	}
	defer p.Release(sys)
	return f(sys)
}
