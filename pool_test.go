package gts

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestSystemSerializesRuns exercises the System concurrency guard: many
// goroutines hammering one System must produce exactly the sequential
// results (run under -race via `make test-race`).
func TestSystemSerializesRuns(t *testing.T) {
	g := smallGraph(t)
	sys, err := NewSystem(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := sys.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := sys.BFS(0)
			if err != nil {
				t.Error(err)
				return
			}
			if !reflect.DeepEqual(got.Levels, want.Levels) || got.Elapsed != want.Elapsed {
				t.Error("concurrent BFS on one System diverged from sequential result")
			}
		}()
	}
	wg.Wait()
}

func TestSystemPoolParallelRuns(t *testing.T) {
	g := smallGraph(t)
	pool, err := NewSystemPool(g, Config{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Size() != 3 || pool.Idle() != 3 {
		t.Fatalf("size/idle = %d/%d", pool.Size(), pool.Idle())
	}
	sys, err := NewSystem(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := sys.PageRank(0.85, 5)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := pool.Do(context.Background(), func(s *System) error {
				got, err := s.PageRank(0.85, 5)
				if err != nil {
					return err
				}
				if !reflect.DeepEqual(got.Ranks, want.Ranks) || got.Elapsed != want.Elapsed {
					t.Error("pooled PageRank diverged from direct result")
				}
				return nil
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if pool.Idle() != 3 {
		t.Errorf("idle after drain = %d, want 3", pool.Idle())
	}
}

func TestSystemPoolAcquireHonorsContext(t *testing.T) {
	g := smallGraph(t)
	pool, err := NewSystemPool(g, Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sys, ok := pool.TryAcquire()
	if !ok {
		t.Fatal("TryAcquire on full pool failed")
	}
	if _, ok := pool.TryAcquire(); ok {
		t.Fatal("TryAcquire on empty pool succeeded")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := pool.Acquire(ctx); err != context.DeadlineExceeded {
		t.Errorf("Acquire on exhausted pool = %v, want DeadlineExceeded", err)
	}
	pool.Release(sys)
	got, err := pool.Acquire(context.Background())
	if err != nil || got != sys {
		t.Errorf("Acquire after Release = %v, %v", got, err)
	}
	pool.Release(got)
}

func TestOpenSpecs(t *testing.T) {
	// Dataset with explicit shrink.
	g, err := Open("RMAT27@16")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 2048 {
		t.Errorf("RMAT27@16: V = %d, want 2048", g.NumVertices())
	}
	// File round-trip.
	path := filepath.Join(t.TempDir(), "g.gts")
	if err := g.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	g2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Error("file spec did not round-trip")
	}
	// Errors.
	for _, bad := range []string{"", "RMAT27@-1", "RMAT27@x", "NotAGraph", "missing.gts"} {
		if _, err := Open(bad); err == nil {
			t.Errorf("Open(%q) succeeded, want error", bad)
		}
	}
	// A dataset name without shrink must use DefaultShrink; RMAT26@12 is
	// small enough to generate here.
	if _, err := os.Stat("RMAT26"); err == nil {
		t.Skip("a file named RMAT26 shadows the dataset")
	}
	g3, err := Open("RMAT26")
	if err != nil {
		t.Fatal(err)
	}
	g4, err := Generate("RMAT26", DefaultShrink)
	if err != nil {
		t.Fatal(err)
	}
	if g3.NumVertices() != g4.NumVertices() {
		t.Errorf("Open default shrink: V = %d, want %d", g3.NumVertices(), g4.NumVertices())
	}
}
