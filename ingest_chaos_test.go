package gts_test

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	gts "repro"
)

// digestBFSPR hashes BFS levels and PageRank ranks — the cheap digest the
// chaos loop compares against the replay oracle every round.
func digestBFSPR(t *testing.T, g *gts.Graph) string {
	t.Helper()
	sys, err := gts.NewSystem(g, gts.Config{})
	if err != nil {
		t.Fatal(err)
	}
	bfs, err := sys.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := sys.PageRank(0.85, 5)
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	fmt.Fprintf(h, "%v|%v", bfs.Levels, pr.Ranks)
	return fmt.Sprintf("%x", h.Sum(nil))
}

// TestChaosIngestRecovery hammers the ingest path the way the crash matrix
// cannot: a randomized (but seeded) schedule of crash kinds and positions,
// with concurrent queries running against live snapshots through a
// storage-fault-injected engine while batches commit. After every crash the
// graph is reopened and must (a) validate cleanly, (b) have replayed
// exactly the committed prefix, and (c) produce BFS/PageRank results
// byte-identical to a synchronous replay oracle of that prefix. The loop
// then resumes ingest from the recovered state until the full history is
// applied; the final state must match the full-history oracle.
func TestChaosIngestRecovery(t *testing.T) {
	spec := testBaseGraph(t)
	rng := rand.New(rand.NewSource(77))

	// A randomized mutation history: inserts, deletes, vertex-space growth.
	const nBatches = 24
	const maxV = 256
	batches := make([][]gts.EdgeOp, nBatches)
	for i := range batches {
		ops := make([]gts.EdgeOp, 1+rng.Intn(6))
		for j := range ops {
			ops[j] = gts.EdgeOp{
				Del: rng.Intn(4) == 0,
				Src: uint64(rng.Intn(maxV)),
				Dst: uint64(rng.Intn(maxV)),
			}
		}
		batches[i] = ops
	}

	walPath := filepath.Join(t.TempDir(), "chaos.wal")
	applied := 0 // committed batches so far, per the last recovery
	for round := 0; applied < nBatches; round++ {
		if round > 4*nBatches {
			t.Fatalf("no forward progress after %d crash rounds (%d/%d batches)", round, applied, nBatches)
		}
		// Two rounds in three crash at a random position in the remainder,
		// with a random crash kind; the rest run to completion.
		var plan *gts.FaultPlan
		if rng.Intn(3) > 0 {
			k := int64(1 + rng.Intn(nBatches-applied))
			seed := rng.Int63()
			switch rng.Intn(4) {
			case 0:
				plan = &gts.FaultPlan{Seed: seed, WALCrashAppends: []int64{k}}
			case 1:
				plan = &gts.FaultPlan{Seed: seed, WALTornAppends: []int64{k}}
			case 2:
				plan = &gts.FaultPlan{Seed: seed, WALCrashSyncs: []int64{k}}
			default:
				plan = &gts.FaultPlan{Seed: seed, CrashApplies: []int64{k}}
			}
		}
		m, err := gts.OpenMutable(spec, walPath, gts.MutableOptions{Faults: plan})
		if err != nil {
			t.Fatalf("round %d: open: %v", round, err)
		}
		if m.ReplayedBatches() != applied {
			t.Fatalf("round %d: replayed %d, want %d", round, m.ReplayedBatches(), applied)
		}
		// Fresh-per-open retained state, the service rule: nothing survives
		// a recovery, so no stale-epoch entry can be consulted this round.
		incSt := incAttach(m)
		if _, _, ok := incSt.Lookup("bfs"); ok {
			t.Fatalf("round %d: fresh store served a retained entry", round)
		}
		incCapture(t, incSt, m)

		// Concurrent queries against live snapshots, streaming pages through
		// a storage-fault-injected engine. Snapshots are immutable, so every
		// query must either succeed or die with a hardware fault that
		// exhausted its retry budget — never observe a torn mutation.
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < 3; w++ {
			seed := rng.Int63()
			wg.Add(1)
			go func() {
				defer wg.Done()
				qr := rand.New(rand.NewSource(seed))
				for {
					select {
					case <-stop:
						return
					default:
					}
					snap := m.Snapshot()
					sys, err := gts.NewSystem(snap, gts.Config{
						Storage: gts.SSDs,
						Faults:  &gts.FaultPlan{Seed: qr.Int63(), StorageErrorRate: 0.02},
					})
					if err != nil {
						t.Errorf("query engine: %v", err)
						return
					}
					if _, err := sys.BFS(0); err != nil && !errors.Is(err, gts.ErrHardwareFault) {
						t.Errorf("concurrent BFS: %v", err)
						return
					}
				}
			}()
		}

		crashed := false
		for i := applied; i < nBatches; i++ {
			if _, err := m.Ingest(batches[i]); err != nil {
				if !errors.Is(err, gts.ErrCrashed) {
					t.Fatalf("round %d batch %d: %v", round, i, err)
				}
				crashed = true
				break
			}
		}
		close(stop)
		wg.Wait()
		if crashed {
			if _, err := m.Ingest(batches[0]); !errors.Is(err, gts.ErrCrashed) {
				t.Fatalf("round %d: dead graph accepted ingest: %v", round, err)
			}
		}
		// Live incremental is safe even after a crash: the commit hook fires
		// only for successful commits, so the in-process delta chain is always
		// consistent with the published snapshot. (Reusing this store after
		// reopening would NOT be — a during-fsync crash can leave a durable
		// batch the hook never saw — which is why recovery gets a fresh store
		// at the top of the next round.)
		incCheck(t, fmt.Sprintf("round %d live", round), incSt, m.Snapshot())
		m.Close()

		// Recover and verify against the synchronous-replay oracle.
		r, err := gts.OpenMutable(spec, walPath, gts.MutableOptions{})
		if err != nil {
			t.Fatalf("round %d: recovery open: %v", round, err)
		}
		committed := r.ReplayedBatches()
		if crashed {
			// A crash before/inside the append loses the batch; one during
			// the fsync or the apply keeps it (it was durable).
			if committed < applied || committed > nBatches {
				t.Fatalf("round %d: recovered %d batches from %d", round, committed, applied)
			}
		} else if committed != nBatches {
			t.Fatalf("round %d: clean run but only %d/%d batches durable", round, committed, nBatches)
		}
		applied = committed
		snap := r.Snapshot()
		if err := snap.Validate(); err != nil {
			t.Fatalf("round %d: recovered graph invalid: %v", round, err)
		}
		graphsEqual(t, fmt.Sprintf("round %d recovered vs oracle", round), snap, oracleGraph(t, spec, batches, applied))
		if digestBFSPR(t, snap) != digestBFSPR(t, oracleGraph(t, spec, batches, applied)) {
			t.Fatalf("round %d: recovered BFS/PageRank diverge from the %d-batch oracle", round, applied)
		}
		r.Close()
	}

	// The surviving WAL replays the whole history: final state must be
	// byte-identical to the full synchronous oracle.
	final, err := gts.OpenMutable(spec, walPath, gts.MutableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer final.Close()
	graphsEqual(t, "final vs full oracle", final.Snapshot(), oracleGraph(t, spec, batches, nBatches))
}
