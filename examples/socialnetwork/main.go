// Social-network analysis on a Twitter-like graph: the intro's motivating
// workload. Runs BFS reachability from a hub account, single-source
// betweenness to find brokers, and shortest paths — the paper's three
// traversal-class algorithms — and shows how the device page cache
// accelerates repeat page visits across traversal levels.
package main

import (
	"fmt"
	"log"
	"sort"

	gts "repro"
)

func main() {
	// A Twitter profile proxy: ~35 out-edges per account, heavy hubs.
	graph, err := gts.Open("Twitter@12")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("social graph: %d accounts, %d follows, %d LP pages for celebrity hubs\n\n",
		graph.NumVertices(), graph.NumEdges(), graph.NumLP())

	sys, err := gts.NewSystem(graph, gts.Config{GPUs: 2})
	if err != nil {
		log.Fatal(err)
	}

	// Reachability: how far does a post spread?
	const hub = 0
	bfs, err := sys.BFS(hub)
	if err != nil {
		log.Fatal(err)
	}
	byLevel := map[int16]int{}
	for _, l := range bfs.Levels {
		if l >= 0 {
			byLevel[l]++
		}
	}
	fmt.Printf("cascade from account %d (%d hops deep):\n", hub, bfs.Metrics.Levels-1)
	for l := int16(0); int(l) < len(byLevel); l++ {
		fmt.Printf("  hop %d: %6d accounts\n", l, byLevel[l])
	}
	fmt.Printf("  page cache hit rate across hops: %.0f%%\n\n", 100*bfs.CacheHitRate)

	// Brokers: who sits on the most shortest paths from the hub?
	bc, err := sys.BC(hub)
	if err != nil {
		log.Fatal(err)
	}
	type broker struct {
		v     int
		score float64
	}
	brokers := make([]broker, len(bc.Scores))
	for v, s := range bc.Scores {
		brokers[v] = broker{v, s}
	}
	sort.Slice(brokers, func(i, j int) bool { return brokers[i].score > brokers[j].score })
	fmt.Println("top information brokers (betweenness):")
	for _, b := range brokers[:5] {
		fmt.Printf("  account %-7d %.1f\n", b.v, b.score)
	}

	// Weighted distance (e.g. interaction cost) to everyone.
	sssp, err := sys.SSSP(hub)
	if err != nil {
		log.Fatal(err)
	}
	reached := 0
	for _, d := range sssp.Dist {
		if d < 1e30 {
			reached++
		}
	}
	fmt.Printf("\nweighted shortest paths reach %d/%d accounts\n", reached, graph.NumVertices())

	// "Who to follow": Random Walk with Restart gives personalized
	// proximity from the hub.
	rwr, err := sys.RWR(hub, 0.15, 15)
	if err != nil {
		log.Fatal(err)
	}
	best, bestScore := uint64(0), float32(-1)
	for v, s := range rwr.Scores {
		if uint64(v) != hub && s > bestScore {
			best, bestScore = uint64(v), s
		}
	}
	fmt.Printf("closest account to %d by random-walk proximity: %d (%.5f)\n", hub, best, bestScore)
	fmt.Printf("total virtual time: BFS %v, BC %v, SSSP %v, RWR %v\n",
		bfs.Elapsed, bc.Elapsed, sssp.Elapsed, rwr.Elapsed)
}
