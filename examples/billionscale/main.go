// Billion-scale walkthrough: the paper's headline result is processing
// RMAT32 (4 G vertices, 64 G edges) on one machine by streaming topology
// from SSDs while only the attribute vectors live in GPU memory. This
// example reproduces that configuration on a proportionally scaled proxy:
// the attribute data does NOT fit one (scaled) GPU, so Strategy-P fails
// with the exact error the paper's sizing argument predicts, and
// Strategy-S spreads it across two GPUs and completes.
package main

import (
	"fmt"
	"log"

	gts "repro"
	"repro/internal/sim"
)

func main() {
	const shrink = 12 // 2^12 smaller than the paper's RMAT32
	graph, err := gts.Open(fmt.Sprintf("RMAT32@%d", shrink))
	if err != nil {
		log.Fatal(err)
	}
	factor := int64(1) << shrink
	fmt.Printf("RMAT32 proxy: %d vertices, %d edges (%d bytes of topology; x%d shrink)\n",
		graph.NumVertices(), graph.NumEdges(), graph.TopologyBytes(), factor)
	fmt.Printf("machine: 2 GPUs and 2 SSDs with capacities scaled by the same factor\n\n")

	base := gts.Config{
		GPUs:        2,
		Storage:     gts.SSDs,
		Devices:     2,
		Streams:     16,
		ScaleFactor: factor,
	}

	// Strategy-P needs a full PageRank attribute replica (4 bytes/vertex,
	// Table 4: 16 GB at paper scale) per GPU — more than one 12 GB GPU
	// holds, exactly the paper's argument for Strategy-S on RMAT31-32.
	pCfg := base
	pCfg.Strategy = gts.StrategyP
	sysP, err := gts.NewSystem(graph, pCfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sysP.PageRank(0.85, 10); err != nil {
		fmt.Printf("Strategy-P: %v\n\n", err)
	} else {
		fmt.Println("Strategy-P unexpectedly fit — scale factor too generous")
	}

	// Strategy-S holds half the attribute data per GPU and broadcasts the
	// topology stream to both.
	sCfg := base
	sCfg.Strategy = gts.StrategyS
	sysS, err := gts.NewSystem(graph, sCfg)
	if err != nil {
		log.Fatal(err)
	}
	pr, err := sysS.PageRank(0.85, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Strategy-S completed %d PageRank iterations\n", pr.Metrics.Levels)
	fmt.Printf("  virtual elapsed:   %v (x%d extrapolates to ~%v at paper scale)\n",
		pr.Elapsed, factor, pr.Elapsed*sim.Time(factor))
	fmt.Printf("  streamed from SSD: %s across %d page reads\n",
		byteStr(pr.StorageBytes), pr.PagesStreamed)
	fmt.Printf("  WA per GPU:        %s (vs %s total — the Strategy-S split)\n",
		byteStr(pr.WABytes/2), byteStr(pr.WABytes))
}

func byteStr(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
