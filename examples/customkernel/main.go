// Custom kernel: the paper's framework executes *user-defined* GPU kernel
// functions (K-theta in §3.1); this example implements one from outside the
// engine — max-label propagation, which finds each weakly-connected
// component's highest vertex ID — and runs it through gts.RunKernel.
//
// A kernel supplies a small-page and a large-page variant (slotted pages
// store low-degree vertices many-per-page and high-degree vertices across
// page runs), reports its simulated GPU cycles, and defines how per-GPU
// state replicas merge under Strategy-P.
package main

import (
	"fmt"
	"log"

	gts "repro"
	"repro/internal/slottedpage"
)

// maxLabel is a PageRank-like (full scan) kernel: every iteration each
// vertex pushes its current label to its out-neighbors and adopts the
// larger of what it had and what arrived, until a fixpoint.
type maxLabel struct {
	g *slottedpage.Graph
}

type maxState struct {
	prev []uint32
	next []uint32
}

func (s *maxState) WABytes() int64 { return int64(len(s.prev)) * 8 }
func (s *maxState) RABytes() int64 { return 0 }
func (s *maxState) Clone() gts.KernelState {
	return &maxState{
		prev: append([]uint32(nil), s.prev...),
		next: append([]uint32(nil), s.next...),
	}
}

func (k *maxLabel) Name() string           { return "MaxLabel" }
func (k *maxLabel) Class() gts.KernelClass { return gts.PageRankLike }
func (k *maxLabel) RAPerVertex() int64     { return 0 }

func (k *maxLabel) NewState() gts.KernelState {
	n := k.g.NumVertices()
	return &maxState{prev: make([]uint32, n), next: make([]uint32, n)}
}

func (k *maxLabel) Init(st gts.KernelState, _ uint64) {
	s := st.(*maxState)
	for i := range s.prev {
		s.prev[i] = uint32(i)
		s.next[i] = uint32(i)
	}
}

func (k *maxLabel) BeginLevel([]gts.KernelState, int32) {}

// RunSP is the small-page kernel: one warp per slot, pushing labels along
// the page's adjacency entries in both directions.
func (k *maxLabel) RunSP(a *gts.KernelArgs) gts.KernelResult {
	s := a.State.(*maxState)
	pg := a.Page
	var res gts.KernelResult
	for slot := 0; slot < pg.NumSlots(); slot++ {
		vid, _ := pg.Slot(slot)
		res.Cycles += 20
		k.push(a, s, vid, pg.Adj(slot), &res)
	}
	return res
}

// RunLP is the large-page kernel: the page holds one hub's partial
// adjacency.
func (k *maxLabel) RunLP(a *gts.KernelArgs) gts.KernelResult {
	s := a.State.(*maxState)
	vid, _ := a.Page.Slot(0)
	var res gts.KernelResult
	res.Cycles += 20
	k.push(a, s, vid, a.Page.Adj(0), &res)
	return res
}

func (k *maxLabel) push(a *gts.KernelArgs, s *maxState, vid uint64, adj slottedpage.AdjView, res *gts.KernelResult) {
	cv := s.prev[vid]
	for i := 0; i < adj.Len(); i++ {
		nvid := k.g.VIDOf(adj.At(i))
		res.Edges++
		res.Cycles += 40
		if nvid >= a.OwnedLo && nvid < a.OwnedHi && cv > s.next[nvid] {
			s.next[nvid] = cv
			res.Updates++
			res.Active = true
		}
		if cn := s.prev[nvid]; vid >= a.OwnedLo && vid < a.OwnedHi && cn > s.next[vid] {
			s.next[vid] = cn
			res.Updates++
			res.Active = true
		}
	}
}

// MergeStates combines Strategy-P replicas: labels merge by maximum.
func (k *maxLabel) MergeStates(sts []gts.KernelState) {
	if len(sts) < 2 {
		return
	}
	base := sts[0].(*maxState)
	for _, other := range sts[1:] {
		o := other.(*maxState)
		for v, c := range o.next {
			if c > base.next[v] {
				base.next[v] = c
			}
		}
	}
	for _, other := range sts[1:] {
		copy(other.(*maxState).next, base.next)
	}
}

// EndIteration advances the fixpoint loop.
func (k *maxLabel) EndIteration(sts []gts.KernelState, active bool) bool {
	for _, st := range sts {
		s := st.(*maxState)
		copy(s.prev, s.next)
	}
	return active
}

func main() {
	graph, err := gts.Open("RMAT27@13")
	if err != nil {
		log.Fatal(err)
	}
	sys, err := gts.NewSystem(graph, gts.Config{GPUs: 2})
	if err != nil {
		log.Fatal(err)
	}

	k := &maxLabel{g: graph}
	st, m, err := sys.RunKernel(k, 0)
	if err != nil {
		log.Fatal(err)
	}
	labels := st.(*maxState).prev
	comps := map[uint32]int{}
	for _, l := range labels {
		comps[l]++
	}
	fmt.Printf("custom MaxLabel kernel over %d vertices:\n", graph.NumVertices())
	fmt.Printf("  components found:  %d (labelled by their max vertex ID)\n", len(comps))
	fmt.Printf("  fixpoint after:    %d full scans\n", m.Levels)
	fmt.Printf("  virtual elapsed:   %v, %d pages streamed, %.0f%% cache hits\n",
		m.Elapsed, m.PagesStreamed, 100*m.CacheHitRate)
}
