// Quickstart: generate a scaled RMAT graph, pack it into slotted pages,
// run PageRank on the simulated GTS machine, and print the top-ranked
// vertices with the run's data-movement metrics.
package main

import (
	"fmt"
	"log"
	"sort"

	gts "repro"
)

func main() {
	// A 2^15-vertex proxy of the paper's RMAT27 dataset, packed into the
	// slotted page format GTS streams to GPUs.
	graph, err := gts.Open("RMAT27@12")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges in %d SP + %d LP pages\n",
		graph.NumVertices(), graph.NumEdges(), graph.NumSP(), graph.NumLP())

	// The default machine: one TITAN X-class GPU, graph in main memory,
	// Strategy-P, 32 async streams, page cache in free device memory.
	sys, err := gts.NewSystem(graph, gts.Config{})
	if err != nil {
		log.Fatal(err)
	}

	res, err := sys.PageRank(0.85, 10)
	if err != nil {
		log.Fatal(err)
	}

	type ranked struct {
		v    int
		rank float32
	}
	top := make([]ranked, len(res.Ranks))
	for v, r := range res.Ranks {
		top[v] = ranked{v, r}
	}
	sort.Slice(top, func(i, j int) bool { return top[i].rank > top[j].rank })
	fmt.Println("top 5 vertices by PageRank:")
	for _, t := range top[:5] {
		fmt.Printf("  vertex %-7d %.6f\n", t.v, t.rank)
	}

	fmt.Printf("\nvirtual elapsed:   %v (10 iterations)\n", res.Elapsed)
	fmt.Printf("pages streamed:    %d, cache hit rate %.0f%%\n", res.PagesStreamed, 100*res.CacheHitRate)
	fmt.Printf("transfer / kernel: %v / %v (the paper's Table 1 ratio)\n", res.TransferTime, res.KernelTime)
}
