// Web-graph analytics on a UK2007-like crawl: PageRank and connected
// components — the paper's full-scan algorithm class — comparing the two
// multi-GPU strategies (§4) and storage placements (Figure 9's axis).
package main

import (
	"fmt"
	"log"

	gts "repro"
)

func main() {
	graph, err := gts.Open("UK2007@12")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("web graph: %d pages, %d links, %d topology pages\n\n",
		graph.NumVertices(), graph.NumEdges(), graph.NumPages())

	configs := []struct {
		name string
		cfg  gts.Config
	}{
		{"Strategy-P, in-memory", gts.Config{GPUs: 2, Strategy: gts.StrategyP}},
		{"Strategy-S, in-memory", gts.Config{GPUs: 2, Strategy: gts.StrategyS}},
		{"Strategy-P, 2 SSDs   ", gts.Config{GPUs: 2, Strategy: gts.StrategyP, Storage: gts.SSDs, Devices: 2}},
		{"Strategy-S, 2 SSDs   ", gts.Config{GPUs: 2, Strategy: gts.StrategyS, Storage: gts.SSDs, Devices: 2}},
	}
	fmt.Println("PageRank x10 under the paper's strategy/storage matrix:")
	for _, c := range configs {
		sys, err := gts.NewSystem(graph, c.cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.PageRank(0.85, 10)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s  elapsed %-9v storage read %s\n",
			c.name, res.Elapsed, byteStr(res.StorageBytes))
	}

	// Connected components over the crawl (PageRank-like full scans until
	// the labels stop changing).
	sys, err := gts.NewSystem(graph, gts.Config{GPUs: 2})
	if err != nil {
		log.Fatal(err)
	}
	cc, err := sys.CC()
	if err != nil {
		log.Fatal(err)
	}
	comps := map[uint32]int{}
	for _, l := range cc.Labels {
		comps[l]++
	}
	largest := 0
	for _, n := range comps {
		if n > largest {
			largest = n
		}
	}
	fmt.Printf("\nconnected components: %d (giant component: %d pages, %.1f%%)\n",
		len(comps), largest, 100*float64(largest)/float64(graph.NumVertices()))
	fmt.Printf("label propagation converged after %d full scans in %v\n", cc.Metrics.Levels, cc.Elapsed)
}

func byteStr(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
