package gts

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/slottedpage"
	"repro/internal/trace"
	"repro/internal/wal"
)

// EdgeOp is one directed-edge mutation in an ingest batch: an insert (Del
// false) or a delete of every occurrence (Del true) of Src -> Dst.
type EdgeOp = slottedpage.EdgeOp

// ErrCrashed reports an operation against a MutableGraph whose ingest path
// absorbed an injected crash: the simulated process is dead, and the only
// way forward is reopening the graph (OpenMutable), which replays the WAL.
var ErrCrashed = fault.ErrCrash

// WALStats mirrors the underlying log's counters.
type WALStats = wal.Stats

// MutableGraph is a crash-recoverable, mutable registered graph: a
// slotted-page snapshot chain (slottedpage.Mutable) fronted by a CRC-framed
// write-ahead log. Every Ingest batch is made durable in the WAL before it
// is applied; the apply publishes a new immutable snapshot whose epoch is
// the batch's log sequence number. Reopening the same spec+WAL replays the
// committed batches deterministically, so a crash at any point — before an
// append, mid-record, during the fsync, or during the page swap — recovers
// the exact committed prefix.
type MutableGraph struct {
	mu  sync.Mutex
	mut *slottedpage.Mutable
	log *wal.Log
	inj *fault.Injector
	rec *trace.Recorder

	epoch    atomic.Uint64 // last applied LSN
	dead     atomic.Bool   // an injected crash killed the ingest path
	replayed int           // batches replayed at open

	onCommit    []func(epoch uint64, snapshot *Graph)
	onCommitOps []func(prevEpoch, epoch uint64, ops []EdgeOp, old, snapshot *Graph)
}

// MutableOptions tunes OpenMutable.
type MutableOptions struct {
	// Faults injects crash points into the WAL and the apply path.
	Faults *FaultPlan
	// Trace, when non-nil, receives walappend/walfsync/walreplay spans.
	Trace *trace.Recorder
}

// OpenMutable opens spec (any gts.Open spec: a .gts file or a registry
// dataset) as a mutable graph whose mutation history lives in the WAL at
// walPath. A fresh walPath starts an empty history; an existing one is
// replayed — committed batches are re-applied to the freshly loaded base
// graph in LSN order, which by the rebuild-equivalence of the mutation
// path recovers a snapshot byte-identical to the pre-crash state.
//
// The base spec must be stable across reopens (same file or same
// deterministic generator spec); the WAL records only the deltas.
func OpenMutable(spec, walPath string, opts MutableOptions) (*MutableGraph, error) {
	base, err := Open(spec)
	if err != nil {
		return nil, err
	}
	var inj *fault.Injector
	if opts.Faults != nil {
		inj = fault.NewInjector(opts.Faults)
	}
	log, batches, err := wal.Open(walPath, wal.Options{Faults: inj, Trace: opts.Trace})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	mut := slottedpage.NewMutable(base)
	m := &MutableGraph{mut: mut, log: log, inj: inj, rec: opts.Trace, replayed: len(batches)}
	for _, b := range batches {
		if _, err := mut.ApplyBatch(opsOf(b.Ops)); err != nil {
			log.Close()
			return nil, fmt.Errorf("gts: replaying WAL batch %d: %w", b.LSN, err)
		}
		m.epoch.Store(b.LSN)
	}
	if len(batches) > 0 && opts.Trace != nil {
		s, e := sim.Time(start.UnixNano()), sim.Time(time.Now().UnixNano())
		opts.Trace.Add(trace.Span{GPU: -1, Stream: -1, Kind: trace.WALReplay, Page: -1, Level: -1, Start: s, End: e})
	}
	return m, nil
}

// opsOf converts WAL ops to slotted-page edge ops.
func opsOf(ops []wal.Op) []EdgeOp {
	out := make([]EdgeOp, len(ops))
	for i, op := range ops {
		out[i] = EdgeOp{Del: op.Del, Src: op.Src, Dst: op.Dst}
	}
	return out
}

// Snapshot returns the current immutable graph snapshot. Snapshots stay
// valid and internally consistent forever; Systems built over one keep
// computing correct results for that epoch after later mutations.
func (m *MutableGraph) Snapshot() *Graph { return m.mut.Snapshot() }

// Epoch returns the graph's version: the LSN of the last applied batch (0
// before any mutation).
func (m *MutableGraph) Epoch() uint64 { return m.epoch.Load() }

// ReplayedBatches reports how many committed WAL batches OpenMutable
// replayed (0 for a fresh WAL).
func (m *MutableGraph) ReplayedBatches() int { return m.replayed }

// WALStats snapshots the underlying log's counters.
func (m *MutableGraph) WALStats() WALStats { return m.log.Stats() }

// WALPath returns the log's file path.
func (m *MutableGraph) WALPath() string { return m.log.Path() }

// Dead reports whether an injected crash killed the ingest path.
func (m *MutableGraph) Dead() bool { return m.dead.Load() }

// OnCommit registers fn to run (under the ingest lock, in commit order)
// after every successfully applied batch. The service layer uses this to
// fence schedulers and invalidate pools.
func (m *MutableGraph) OnCommit(fn func(epoch uint64, snapshot *Graph)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onCommit = append(m.onCommit, fn)
}

// OnCommitOps registers fn to run (under the ingest lock, in commit order)
// after every successfully applied batch, with the full commit context:
// the epoch edge it spans, the applied ops, and both the pre-commit and
// post-commit snapshots. The incremental-recompute layer uses this to
// migrate retained state across the epoch fence — the pre-image snapshot
// is what lets it compute which vertices *lost* an edge.
func (m *MutableGraph) OnCommitOps(fn func(prevEpoch, epoch uint64, ops []EdgeOp, old, snapshot *Graph)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onCommitOps = append(m.onCommitOps, fn)
}

// Ingest commits one batch of edge mutations: WAL append + group-commit
// fsync first, then the in-memory apply and snapshot publish. It returns
// the new epoch (the batch's LSN).
//
// Under fault injection the batch can die at four points, matching the
// crash matrix the recovery tests sweep:
//
//   - before the append: nothing reached the disk, the batch is lost —
//     recovery serves the previous epoch;
//   - mid-record (torn write): a record prefix reached the disk — recovery
//     truncates it and serves the previous epoch;
//   - during the fsync: the record is durable but unacknowledged —
//     recovery replays it (durability wins the ambiguity);
//   - during the apply/page swap: the record is durable, the in-memory
//     snapshot untouched — recovery replays it.
//
// Every crash marks the MutableGraph dead (ErrCrashed); reopening via
// OpenMutable is the recovery path, exactly as for a real process death.
func (m *MutableGraph) Ingest(ops []EdgeOp) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dead.Load() {
		return 0, fmt.Errorf("gts: mutable graph is dead after a crash: %w", ErrCrashed)
	}
	// Reject unappliable batches BEFORE they reach the log: a durable batch
	// that cannot apply would poison every future replay.
	limit := m.mut.Snapshot().Config().MaxAddressableVertices()
	for _, op := range ops {
		if op.Src >= limit || op.Dst >= limit {
			return 0, fmt.Errorf("gts: edge %d->%d exceeds addressable capacity %d", op.Src, op.Dst, limit)
		}
	}
	wops := make([]wal.Op, len(ops))
	for i, op := range ops {
		wops[i] = wal.Op{Del: op.Del, Src: op.Src, Dst: op.Dst}
	}
	lsn, err := m.log.Append(wops)
	if err != nil {
		if errors.Is(err, fault.ErrCrash) {
			m.dead.Store(true)
		}
		return 0, err
	}
	if m.inj.ApplyPoint() {
		// Crash during the apply/page-swap: the batch is durable in the WAL
		// but never reaches the in-memory snapshot. Readers keep the old
		// epoch; recovery replays the batch.
		m.dead.Store(true)
		return 0, fmt.Errorf("gts: crash during page swap (batch %d durable, not applied): %w", lsn, ErrCrashed)
	}
	prevEpoch := m.epoch.Load()
	var old *Graph
	if len(m.onCommitOps) > 0 {
		old = m.mut.Snapshot()
	}
	snap, err := m.mut.ApplyBatch(ops)
	if err != nil {
		// Unreachable for batches the pre-check admitted; if it happens the
		// log holds a durable batch the apply path rejects, so fail loudly
		// rather than diverge from what recovery would replay.
		m.dead.Store(true)
		return 0, fmt.Errorf("gts: batch %d durable but unappliable: %w", lsn, err)
	}
	m.epoch.Store(lsn)
	for _, fn := range m.onCommit {
		fn(lsn, snap)
	}
	for _, fn := range m.onCommitOps {
		fn(prevEpoch, lsn, ops, old, snap)
	}
	return lsn, nil
}

// FaultStats reports the injected-fault counters (zero-value if no plan).
func (m *MutableGraph) FaultStats() FaultStats { return m.inj.Stats() }

// Close closes the WAL. The current snapshot remains usable.
func (m *MutableGraph) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.log.Close()
}
