// Benchmarks: one per table and figure of the paper's evaluation. Each
// drives the same experiment code as cmd/gtsbench at a reduced dataset
// scale so `go test -bench=.` finishes quickly; run
// `go run ./cmd/gtsbench -exp all` for the full-scale tables.
//
// Wall-clock ns/op measures the *simulator's* cost; the reproduced quantity
// is the virtual time inside each table, surfaced via ReportMetric where a
// single headline number exists.
package gts_test

import (
	"strconv"
	"testing"

	gts "repro"
	"repro/internal/experiments"
)

// benchRunner returns a fresh runner at bench scale. Graphs are cached
// inside the runner, so each benchmark pays generation once.
func benchRunner() *experiments.Runner {
	return experiments.New(experiments.Options{Shrink: 16, PRIterations: 5})
}

// benchExperiment runs one experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	r := benchRunner()
	b.ResetTimer()
	var tab *experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		tab, err = r.Run(id)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tab.Rows)), "rows")
}

func BenchmarkTable1TransferKernelRatios(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2PhysicalIDConfigs(b *testing.B)    { benchExperiment(b, "table2") }
func BenchmarkTable3DatasetStatistics(b *testing.B)    { benchExperiment(b, "table3") }
func BenchmarkTable4WAvsTopology(b *testing.B)         { benchExperiment(b, "table4") }
func BenchmarkTable5TOTEMRatios(b *testing.B)          { benchExperiment(b, "table5") }
func BenchmarkFig4StreamTimelines(b *testing.B)        { benchExperiment(b, "fig4") }
func BenchmarkFig6VsDistributed(b *testing.B)          { benchExperiment(b, "fig6") }
func BenchmarkFig7VsCPU(b *testing.B)                  { benchExperiment(b, "fig7") }
func BenchmarkFig8VsGPU(b *testing.B)                  { benchExperiment(b, "fig8") }
func BenchmarkFig9Strategies(b *testing.B)             { benchExperiment(b, "fig9") }
func BenchmarkFig10Streams(b *testing.B)               { benchExperiment(b, "fig10") }
func BenchmarkFig11Caching(b *testing.B)               { benchExperiment(b, "fig11") }
func BenchmarkFig13MoreAlgorithms(b *testing.B)        { benchExperiment(b, "fig13") }
func BenchmarkFig14MicroTechniques(b *testing.B)       { benchExperiment(b, "fig14") }
func BenchmarkCostModelChecks(b *testing.B)            { benchExperiment(b, "costmodel") }
func BenchmarkXStreamAblation(b *testing.B)            { benchExperiment(b, "xstream") }
func BenchmarkScaleup(b *testing.B)                    { benchExperiment(b, "scaleup") }
func BenchmarkDesignAblations(b *testing.B)            { benchExperiment(b, "ablations") }

// The benchmarks below measure the engine itself (not the comparison
// harness): virtual seconds per run are reported as "vsec".

func benchEngine(b *testing.B, dataset, algo string, cfg gts.Config) {
	g, err := gts.Generate(dataset, 16)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := gts.NewSystem(g, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var vsec float64
	for i := 0; i < b.N; i++ {
		var m gts.Metrics
		switch algo {
		case "BFS":
			res, err := sys.BFS(0)
			if err != nil {
				b.Fatal(err)
			}
			m = res.Metrics
		case "PageRank":
			res, err := sys.PageRank(0.85, 5)
			if err != nil {
				b.Fatal(err)
			}
			m = res.Metrics
		}
		vsec = m.Elapsed.Seconds()
	}
	b.ReportMetric(vsec, "vsec")
}

func BenchmarkGTSBFS(b *testing.B) {
	for _, ds := range []string{"Twitter", "RMAT28"} {
		b.Run(ds, func(b *testing.B) { benchEngine(b, ds, "BFS", gts.Config{}) })
	}
}

func BenchmarkGTSPageRank(b *testing.B) {
	for _, ds := range []string{"Twitter", "RMAT28"} {
		b.Run(ds, func(b *testing.B) { benchEngine(b, ds, "PageRank", gts.Config{}) })
	}
}

func BenchmarkGTSStrategies(b *testing.B) {
	for _, tc := range []struct {
		name string
		cfg  gts.Config
	}{
		{"P-2GPU", gts.Config{GPUs: 2, Strategy: gts.StrategyP}},
		{"S-2GPU", gts.Config{GPUs: 2, Strategy: gts.StrategyS}},
	} {
		b.Run(tc.name, func(b *testing.B) { benchEngine(b, "RMAT28", "PageRank", tc.cfg) })
	}
}

func BenchmarkGTSStreamSweep(b *testing.B) {
	for _, streams := range []int{1, 8, 32} {
		b.Run(strconv.Itoa(streams), func(b *testing.B) {
			benchEngine(b, "RMAT28", "PageRank", gts.Config{Streams: streams})
		})
	}
}

// BenchmarkSlottedPageBuild measures the page packer (real work, not
// simulation).
func BenchmarkSlottedPageBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := gts.Generate("RMAT27", 15); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBenchIDsCoverEveryExperiment pins the benchmark list to the
// experiment registry so a new experiment cannot be added without a bench.
func TestBenchIDsCoverEveryExperiment(t *testing.T) {
	covered := map[string]bool{
		"table1": true, "table2": true, "table3": true, "table4": true, "table5": true,
		"fig4": true, "fig6": true, "fig7": true, "fig8": true, "fig9": true,
		"fig10": true, "fig11": true, "fig13": true, "fig14": true,
		"costmodel": true, "xstream": true, "scaleup": true, "ablations": true,
	}
	for _, id := range experiments.IDs() {
		if !covered[id] {
			t.Errorf("experiment %s has no benchmark — add one", id)
		}
	}
}
