// Benchmarks: one per table and figure of the paper's evaluation. Each
// drives the same experiment code as cmd/gtsbench at a reduced dataset
// scale so `go test -bench=.` finishes quickly; run
// `go run ./cmd/gtsbench -exp all` for the full-scale tables.
//
// Wall-clock ns/op measures the *simulator's* cost; the reproduced quantity
// is the virtual time inside each table, surfaced via ReportMetric where a
// single headline number exists.
package gts_test

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	gts "repro"
	"repro/internal/experiments"
	"repro/internal/service"
)

// benchRunner returns a fresh runner at bench scale. Graphs are cached
// inside the runner, so each benchmark pays generation once.
func benchRunner() *experiments.Runner {
	return experiments.New(experiments.Options{Shrink: 16, PRIterations: 5})
}

// benchExperiment runs one experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	r := benchRunner()
	b.ResetTimer()
	var tab *experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		tab, err = r.Run(id)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tab.Rows)), "rows")
}

func BenchmarkTable1TransferKernelRatios(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2PhysicalIDConfigs(b *testing.B)    { benchExperiment(b, "table2") }
func BenchmarkTable3DatasetStatistics(b *testing.B)    { benchExperiment(b, "table3") }
func BenchmarkTable4WAvsTopology(b *testing.B)         { benchExperiment(b, "table4") }
func BenchmarkTable5TOTEMRatios(b *testing.B)          { benchExperiment(b, "table5") }
func BenchmarkFig4StreamTimelines(b *testing.B)        { benchExperiment(b, "fig4") }
func BenchmarkFig6VsDistributed(b *testing.B)          { benchExperiment(b, "fig6") }
func BenchmarkFig7VsCPU(b *testing.B)                  { benchExperiment(b, "fig7") }
func BenchmarkFig8VsGPU(b *testing.B)                  { benchExperiment(b, "fig8") }
func BenchmarkFig9Strategies(b *testing.B)             { benchExperiment(b, "fig9") }
func BenchmarkFig10Streams(b *testing.B)               { benchExperiment(b, "fig10") }
func BenchmarkFig11Caching(b *testing.B)               { benchExperiment(b, "fig11") }
func BenchmarkFig13MoreAlgorithms(b *testing.B)        { benchExperiment(b, "fig13") }
func BenchmarkFig14MicroTechniques(b *testing.B)       { benchExperiment(b, "fig14") }
func BenchmarkCostModelChecks(b *testing.B)            { benchExperiment(b, "costmodel") }
func BenchmarkXStreamAblation(b *testing.B)            { benchExperiment(b, "xstream") }
func BenchmarkScaleup(b *testing.B)                    { benchExperiment(b, "scaleup") }
func BenchmarkDesignAblations(b *testing.B)            { benchExperiment(b, "ablations") }

// The benchmarks below measure the engine itself (not the comparison
// harness): virtual seconds per run are reported as "vsec".

func benchEngine(b *testing.B, dataset, algo string, cfg gts.Config) {
	g, err := gts.Generate(dataset, 16)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := gts.NewSystem(g, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var vsec float64
	for i := 0; i < b.N; i++ {
		var m gts.Metrics
		switch algo {
		case "BFS":
			res, err := sys.BFS(0)
			if err != nil {
				b.Fatal(err)
			}
			m = res.Metrics
		case "PageRank":
			res, err := sys.PageRank(0.85, 5)
			if err != nil {
				b.Fatal(err)
			}
			m = res.Metrics
		}
		vsec = m.Elapsed.Seconds()
	}
	b.ReportMetric(vsec, "vsec")
}

func BenchmarkGTSBFS(b *testing.B) {
	for _, ds := range []string{"Twitter", "RMAT28"} {
		b.Run(ds, func(b *testing.B) { benchEngine(b, ds, "BFS", gts.Config{}) })
	}
}

func BenchmarkGTSPageRank(b *testing.B) {
	for _, ds := range []string{"Twitter", "RMAT28"} {
		b.Run(ds, func(b *testing.B) { benchEngine(b, ds, "PageRank", gts.Config{}) })
	}
}

func BenchmarkGTSStrategies(b *testing.B) {
	for _, tc := range []struct {
		name string
		cfg  gts.Config
	}{
		{"P-2GPU", gts.Config{GPUs: 2, Strategy: gts.StrategyP}},
		{"S-2GPU", gts.Config{GPUs: 2, Strategy: gts.StrategyS}},
	} {
		b.Run(tc.name, func(b *testing.B) { benchEngine(b, "RMAT28", "PageRank", tc.cfg) })
	}
}

func BenchmarkGTSStreamSweep(b *testing.B) {
	for _, streams := range []int{1, 8, 32} {
		b.Run(strconv.Itoa(streams), func(b *testing.B) {
			benchEngine(b, "RMAT28", "PageRank", gts.Config{Streams: streams})
		})
	}
}

// BenchmarkService is the serving-layer baseline: N concurrent clients
// submitting mixed BFS/PageRank jobs through internal/service's queue and
// worker pool. Reported metrics: jobs/sec end to end, and p50/p99 job
// latency in milliseconds. The result cache is disabled so every job pays
// for a real engine run — this measures the serving path, not memoization.
func BenchmarkService(b *testing.B) {
	g, err := gts.Generate("RMAT27", 16)
	if err != nil {
		b.Fatal(err)
	}
	for _, clients := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			srv := service.New(service.Config{Workers: 8, QueueDepth: 1024, CacheEntries: -1})
			pool, err := gts.NewSystemPool(g, gts.Config{}, 8)
			if err != nil {
				b.Fatal(err)
			}
			if err := srv.AddGraph("bench", pool); err != nil {
				b.Fatal(err)
			}
			defer srv.Close()

			var (
				next      atomic.Int64
				mu        sync.Mutex
				latencies []time.Duration
			)
			b.ResetTimer()
			start := time.Now()
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					local := make([]time.Duration, 0, b.N/clients+1)
					for {
						i := next.Add(1)
						if i > int64(b.N) {
							break
						}
						req := service.Request{Graph: "bench", Algo: "bfs",
							Params: service.Params{Source: uint64(i) % g.NumVertices()}}
						if i%2 == 0 {
							req.Algo = "pagerank"
							req.Params = service.Params{Iterations: 5}
						}
						t0 := time.Now()
						job, err := srv.Run(context.Background(), req)
						if err != nil {
							b.Error(err)
							return
						}
						if job.State() != service.JobDone {
							b.Errorf("job state = %v (%v)", job.State(), job.Err())
							return
						}
						local = append(local, time.Since(t0))
					}
					mu.Lock()
					latencies = append(latencies, local...)
					mu.Unlock()
				}()
			}
			wg.Wait()
			elapsed := time.Since(start)
			b.StopTimer()

			sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
			if len(latencies) > 0 {
				b.ReportMetric(float64(len(latencies))/elapsed.Seconds(), "jobs/sec")
				b.ReportMetric(float64(latencies[len(latencies)/2].Microseconds())/1000, "p50-ms")
				b.ReportMetric(float64(latencies[len(latencies)*99/100].Microseconds())/1000, "p99-ms")
			}
		})
	}
}

// BenchmarkSlottedPageBuild measures the page packer (real work, not
// simulation).
func BenchmarkSlottedPageBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := gts.Generate("RMAT27", 15); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBenchIDsCoverEveryExperiment pins the benchmark list to the
// experiment registry so a new experiment cannot be added without a bench.
func TestBenchIDsCoverEveryExperiment(t *testing.T) {
	covered := map[string]bool{
		"table1": true, "table2": true, "table3": true, "table4": true, "table5": true,
		"fig4": true, "fig6": true, "fig7": true, "fig8": true, "fig9": true,
		"fig10": true, "fig11": true, "fig13": true, "fig14": true,
		"costmodel": true, "xstream": true, "scaleup": true, "ablations": true,
	}
	for _, id := range experiments.IDs() {
		if !covered[id] {
			t.Errorf("experiment %s has no benchmark — add one", id)
		}
	}
}
